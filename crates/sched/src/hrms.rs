//! HRMS-style register-sensitive modulo scheduling.
//!
//! The paper uses HRMS (Hypernode Reduction Modulo Scheduling, by the same
//! authors) as its core scheduler. HRMS has two phases:
//!
//! 1. An **ordering phase** that arranges the operations so every operation
//!    is placed while only its predecessors *or* only its successors are
//!    already scheduled (recurrences are handled first, in decreasing order
//!    of their RecMII bound, together with the nodes on paths connecting
//!    them).
//! 2. A **placement phase** that walks the order, computing the earliest
//!    start implied by scheduled predecessors and/or the latest start
//!    implied by scheduled successors, and scanning at most II slots of the
//!    modulo reservation table in the direction that keeps the operation as
//!    close to its neighbours as possible.
//!
//! Keeping operations close to their producers/consumers is what makes the
//! scheduler *register-sensitive*: lifetimes stay near their dataflow
//! minimum. Where the MICRO-28 description of HRMS leaves details open we
//! follow the ordering later formalized by the same group (Swing Modulo
//! Scheduling), which preserves the pred-XOR-succ property.
//!
//! Complex-operation groups (bonded spill code, Section 4.3 of the paper)
//! are ordered and placed atomically with exact member offsets.
//!
//! Everything II-independent — groups, the super graph, recurrence sets and
//! their bounds, reachability, the fallback order — lives in
//! [`LoopAnalysis`] and is computed once per loop; the II search below only
//! re-runs the (warm-started) timing analysis, the alternating-direction
//! inner ordering and the placement scan per candidate II.

use std::collections::BTreeSet;

use regpipe_ddg::{Ddg, OpId};
use regpipe_machine::{MachineConfig, Mrt};

use crate::analysis::TimeAnalysis;
use crate::groups::ComplexGroups;
use crate::loop_analysis::LoopAnalysis;
use crate::{SchedError, SchedRequest, Schedule, Scheduler};

const NEG_INF: i64 = i64::MIN / 4;

/// The register-sensitive HRMS/Swing-style modulo scheduler.
///
/// See the [crate documentation](crate) for the algorithm outline.
#[derive(Clone, Copy, Default, Debug)]
pub struct HrmsScheduler {
    _private: (),
}

impl HrmsScheduler {
    /// Creates the scheduler.
    pub fn new() -> Self {
        HrmsScheduler { _private: () }
    }

    /// Runs the ordering phase in isolation: the sequence of complex-group
    /// leaders HRMS places at `ii`, one per group.
    ///
    /// The order satisfies the pred-XOR-succ property: a group outside any
    /// recurrence is emitted while only its predecessors or only its
    /// successors are already ordered, never both (inside recurrences both
    /// sides may be ordered; the placement window handles that case).
    ///
    /// Returns `None` when the timing analysis is infeasible at `ii`.
    pub fn ordering(&self, ddg: &Ddg, machine: &MachineConfig, ii: u32) -> Option<Vec<OpId>> {
        let ctx = LoopAnalysis::new(ddg, machine);
        let analysis = ctx.time_analysis(ii, None)?;
        Some(ordering_in(&ctx, &analysis))
    }
}

impl Scheduler for HrmsScheduler {
    fn name(&self) -> &'static str {
        "hrms"
    }

    fn schedule(
        &self,
        ddg: &Ddg,
        machine: &MachineConfig,
        request: &SchedRequest,
    ) -> Result<Schedule, SchedError> {
        self.schedule_in(&LoopAnalysis::new(ddg, machine), request)
    }

    fn schedule_in(
        &self,
        ctx: &LoopAnalysis<'_>,
        request: &SchedRequest,
    ) -> Result<Schedule, SchedError> {
        let lower = ctx.mii().max(request.min_ii.unwrap_or(1));
        let upper = request.max_ii.unwrap_or_else(|| ctx.fallback_max_ii());
        if upper < lower {
            return Err(SchedError::InfeasibleRequest { min_ii: lower, max_ii: upper });
        }
        let mut scratch = PlaceScratch::new(ctx.ddg().num_ops());
        let mut tried = 0u32;
        let mut prev: Option<TimeAnalysis> = None;
        for ii in lower..=upper {
            tried += 1;
            let Some(analysis) = ctx.time_analysis(ii, prev.as_ref()) else {
                continue;
            };
            let order = ordering_in(ctx, &analysis);
            if let Some(starts) =
                place_order(ctx, ii, &order, &analysis, PlaceMode::Hrms, &mut scratch)
            {
                return Ok(Schedule::with_provenance(ii, starts, "hrms", tried));
            }
            // The greedy bidirectional placement can paint itself into a
            // corner on graphs whose acyclic part straddles the recurrences.
            // A forward topological order with ASAP-clamped placement cannot
            // drift and converges as II grows; try it before giving up on
            // this II so the search degrades gracefully instead of failing.
            if let Some(starts) = place_order(
                ctx,
                ii,
                &ctx.fallback,
                &analysis,
                PlaceMode::AsapClamped,
                &mut scratch,
            ) {
                return Ok(Schedule::with_provenance(ii, starts, "hrms", tried));
            }
            prev = Some(analysis);
        }
        Err(SchedError::NoScheduleUpTo { max_ii: upper })
    }
}

// ----------------------------------------------------------------------
// Ordering phase (per-II half; the priority sets live in LoopAnalysis)
// ----------------------------------------------------------------------

/// Sweep direction of the ordering phase (shared with the SMS scheduler).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Direction {
    /// Expanding from ordered predecessors towards successors.
    TopDown,
    /// Expanding from ordered successors towards predecessors.
    BottomUp,
}

/// Group-level timing priorities: per complex group, the earliest member
/// ASAP, the latest member ALAP (both on the leader's clock) and the
/// minimum member mobility. Shared by the HRMS and SMS ordering phases.
pub(crate) fn group_priorities(
    ctx: &LoopAnalysis<'_>,
    analysis: &TimeAnalysis,
) -> (Vec<i64>, Vec<i64>, Vec<i64>) {
    let groups = ctx.groups();
    let g = groups.len();
    let mut g_asap = vec![i64::MAX; g];
    let mut g_alap = vec![NEG_INF; g];
    let mut g_mob = vec![i64::MAX; g];
    for gi in 0..g {
        for &m in groups.members_of(groups.leader(gi)) {
            g_asap[gi] = g_asap[gi].min(analysis.asap(m) - groups.offset(m));
            g_alap[gi] = g_alap[gi].max(analysis.alap(m) - groups.offset(m));
            g_mob[gi] = g_mob[gi].min(analysis.mobility(m));
        }
    }
    (g_asap, g_alap, g_mob)
}

/// Produces the scheduling order as a list of group leaders, walking the
/// context's precomputed priority sets with the timing analysis for this II.
pub(crate) fn ordering_in(ctx: &LoopAnalysis<'_>, analysis: &TimeAnalysis) -> Vec<OpId> {
    let sg = &ctx.sg;
    let (g_asap, g_alap, g_mob) = group_priorities(ctx, analysis);
    let horizon: i64 = g_alap.iter().copied().max().unwrap_or(0);
    frontier_walk(
        ctx,
        // Fresh start: most critical (min mobility), earliest.
        |remaining| {
            remaining
                .iter()
                .copied()
                .min_by_key(|&v| (g_mob[v], g_asap[v], v))
                .expect("non-empty")
        },
        |frontier, remaining, dir| {
            pick(frontier, remaining, sg, dir, &g_asap, &g_alap, &g_mob, horizon)
        },
    )
}

/// The ordering walk shared by the HRMS and SMS schedulers: alternating
/// top-down/bottom-up sweeps over the context's precomputed priority
/// sets, expanding a frontier from the already-ordered groups. The two
/// schedulers differ only in their plug-ins — `seed` chooses the fresh
/// start of a set no ordered group connects to yet, `pick(frontier,
/// remaining, dir)` the next group for the current sweep direction.
pub(crate) fn frontier_walk(
    ctx: &LoopAnalysis<'_>,
    seed: impl Fn(&BTreeSet<usize>) -> usize,
    pick: impl Fn(&BTreeSet<usize>, &BTreeSet<usize>, Direction) -> Option<usize>,
) -> Vec<OpId> {
    let groups = ctx.groups();
    let sg = &ctx.sg;
    let mut order: Vec<usize> = Vec::with_capacity(groups.len());
    let mut ordered = vec![false; groups.len()];
    for set in &ctx.sets {
        let mut remaining: BTreeSet<usize> = set.iter().copied().collect();
        while !remaining.is_empty() {
            let td: Vec<usize> = remaining
                .iter()
                .copied()
                .filter(|&v| sg.preds[v].iter().any(|&p| ordered[p]))
                .collect();
            let bu: Vec<usize> = remaining
                .iter()
                .copied()
                .filter(|&v| sg.succs[v].iter().any(|&s| ordered[s]))
                .collect();
            let (mut frontier, dir): (BTreeSet<usize>, Direction) =
                if !td.is_empty() && bu.is_empty() {
                    (td.into_iter().collect(), Direction::TopDown)
                } else if !bu.is_empty() && td.is_empty() {
                    (bu.into_iter().collect(), Direction::BottomUp)
                } else if td.is_empty() && bu.is_empty() {
                    ([seed(&remaining)].into_iter().collect(), Direction::TopDown)
                } else {
                    (td.into_iter().collect(), Direction::TopDown)
                };
            while let Some(v) = pick(&frontier, &remaining, dir) {
                frontier.remove(&v);
                if !remaining.remove(&v) {
                    continue;
                }
                ordered[v] = true;
                order.push(v);
                let next = match dir {
                    Direction::TopDown => &sg.succs[v],
                    Direction::BottomUp => &sg.preds[v],
                };
                for &w in next {
                    if remaining.contains(&w) {
                        frontier.insert(w);
                    }
                }
            }
        }
    }
    order.into_iter().map(|gi| groups.leader(gi)).collect()
}

/// Picks the next group from the frontier.
///
/// Groups that are *ready* — all their same-set predecessors (top-down) or
/// successors (bottom-up) already ordered — are strongly preferred: ordering
/// an ancestor before its in-set descendant in a bottom-up sweep (or vice
/// versa) can anchor the two against different neighbours and leave the
/// in-between node an unsatisfiable window at every II. Ties fall back to
/// criticality, then mobility, then index.
#[allow(clippy::too_many_arguments)]
fn pick(
    frontier: &BTreeSet<usize>,
    remaining: &BTreeSet<usize>,
    sg: &crate::loop_analysis::SuperGraph,
    dir: Direction,
    g_asap: &[i64],
    g_alap: &[i64],
    g_mob: &[i64],
    horizon: i64,
) -> Option<usize> {
    frontier.iter().copied().min_by_key(|&v| {
        let blocked_by = match dir {
            Direction::TopDown => &sg.preds[v],
            Direction::BottomUp => &sg.succs[v],
        };
        let not_ready = blocked_by.iter().any(|w| remaining.contains(w) && *w != v);
        let criticality = match dir {
            // Top-down: prefer the node with the longest path below it.
            Direction::TopDown => -(horizon - g_alap[v]),
            // Bottom-up: prefer the node with the longest path above it.
            Direction::BottomUp => -g_asap[v],
        };
        (not_ready, criticality, g_mob[v], v)
    })
}

/// Group leaders in a forward topological order of the zero-distance edge
/// DAG; each group is placed at the position of its *last* member so all
/// free intra-iteration predecessors of every member come first.
pub(crate) fn topo_leader_order(ddg: &Ddg, groups: &ComplexGroups) -> Vec<OpId> {
    let node_order = regpipe_ddg::algo::topo_order_ignoring_back_edges(ddg);
    let mut position = vec![0usize; ddg.num_ops()];
    for (i, v) in node_order.iter().enumerate() {
        position[v.index()] = i;
    }
    let mut group_pos: Vec<(usize, usize)> = (0..groups.len())
        .map(|gi| {
            let last = groups
                .members_of(groups.leader(gi))
                .iter()
                .map(|m| position[m.index()])
                .max()
                .expect("groups are non-empty");
            (last, gi)
        })
        .collect();
    group_pos.sort_unstable();
    group_pos.into_iter().map(|(_, gi)| groups.leader(gi)).collect()
}

// ----------------------------------------------------------------------
// Placement phase (shared with the ASAP baseline)
// ----------------------------------------------------------------------

/// Placement policy for [`place_order`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum PlaceMode {
    /// HRMS: operations hug their scheduled neighbours — upward scans from
    /// the earliest start when predecessors anchor them, downward scans from
    /// the latest start when successors do. Minimizes lifetimes but can
    /// wedge on graphs whose acyclic part straddles several recurrences.
    Hrms,
    /// ASAP with a dataflow clamp: every scan runs upward and never starts
    /// below the operation's ASAP level, so placements cannot drift
    /// unboundedly negative. Register-insensitive, but guaranteed to
    /// converge as II grows (placing everything at its ASAP fixpoint is
    /// dependence-feasible, and resource conflicts vanish at large II).
    AsapClamped,
}

/// Reusable buffers for [`place_order`]'s inner slot search, allocated once
/// per II sweep instead of per placement attempt.
pub(crate) struct PlaceScratch {
    /// Tentative start cycle per op (`None` = not yet placed).
    start: Vec<Option<i64>>,
    /// Members already committed to the MRT within one transactional slot
    /// attempt (unwound on conflict).
    done: Vec<(regpipe_ddg::OpKind, i64)>,
}

impl PlaceScratch {
    pub(crate) fn new(n: usize) -> Self {
        PlaceScratch { start: vec![None; n], done: Vec::new() }
    }
}

/// The slot sequence scanned for one group: at most II candidate start
/// cycles, ascending or descending. Replaces a per-group `Vec<i64>`
/// collection with a stack iterator.
#[derive(Clone, Copy, Debug)]
enum SlotScan {
    /// `next..=last`, ascending (empty when `next > last`).
    Up { next: i64, last: i64 },
    /// `next..=last` descending, i.e. `next, next-1, …, last`.
    Down { next: i64, last: i64 },
}

impl Iterator for SlotScan {
    type Item = i64;

    fn next(&mut self) -> Option<i64> {
        match self {
            SlotScan::Up { next, last } => {
                if *next > *last {
                    return None;
                }
                let t = *next;
                *next += 1;
                Some(t)
            }
            SlotScan::Down { next, last } => {
                if *next < *last {
                    return None;
                }
                let t = *next;
                *next -= 1;
                Some(t)
            }
        }
    }
}

/// Places groups following `order`; returns per-op start cycles or `None`
/// if some group cannot be placed at this II.
pub(crate) fn place_order(
    ctx: &LoopAnalysis<'_>,
    ii: u32,
    order: &[OpId],
    analysis: &TimeAnalysis,
    mode: PlaceMode,
    scratch: &mut PlaceScratch,
) -> Option<Vec<i64>> {
    let ddg = ctx.ddg();
    let groups = ctx.groups();
    let ii64 = i64::from(ii);
    scratch.start.fill(None);
    let start = &mut scratch.start;
    let mut mrt = Mrt::new(ctx.machine(), ii);

    // Pre-check: free edges internal to a group must be consistent with the
    // bond offsets at this II.
    for e in &ctx.intra_free {
        if e.sep < e.lat - ii64 * e.dist {
            return None;
        }
    }

    for &leader in order {
        let members = groups.members_of(leader);
        debug_assert_eq!(groups.offset(leader), 0);

        // Window from scheduled neighbours, expressed on the leader's time.
        let mut early: Option<i64> = None;
        let mut late: Option<i64> = None;
        for &m in members {
            let m_off = groups.offset(m);
            for e in &ctx.in_cross[m.index()] {
                if let Some(tp) = start[e.other] {
                    let c = tp + e.lat - ii64 * e.dist - m_off;
                    early = Some(early.map_or(c, |x: i64| x.max(c)));
                }
            }
            for e in &ctx.out_cross[m.index()] {
                if let Some(ts) = start[e.other] {
                    let c = ts - e.lat + ii64 * e.dist - m_off;
                    late = Some(late.map_or(c, |x: i64| x.min(c)));
                }
            }
        }

        // The group's ASAP level on the leader's clock.
        let g_asap = members
            .iter()
            .map(|&m| analysis.asap(m) - groups.offset(m))
            .max()
            .expect("groups are non-empty");

        // Candidate slots, at most II of them.
        let candidates: SlotScan = match (early, late) {
            (Some(e), Some(l)) => {
                if l < e {
                    return None;
                }
                let lo = match mode {
                    PlaceMode::Hrms => e,
                    // Clamp toward the dataflow level when the window allows.
                    PlaceMode::AsapClamped => {
                        if e.max(g_asap) <= l {
                            e.max(g_asap)
                        } else {
                            e
                        }
                    }
                };
                SlotScan::Up { next: lo, last: l.min(lo + ii64 - 1) }
            }
            (Some(e), None) => {
                let lo = match mode {
                    PlaceMode::Hrms => e,
                    PlaceMode::AsapClamped => e.max(g_asap),
                };
                SlotScan::Up { next: lo, last: lo + ii64 - 1 }
            }
            (None, Some(l)) => match mode {
                // Scan downward: place as late as possible, next to the
                // already-scheduled consumers.
                PlaceMode::Hrms => SlotScan::Down { next: l, last: l - ii64 + 1 },
                PlaceMode::AsapClamped => {
                    if l < g_asap {
                        return None;
                    }
                    SlotScan::Up { next: g_asap, last: l.min(g_asap + ii64 - 1) }
                }
            },
            (None, None) => SlotScan::Up { next: g_asap, last: g_asap + ii64 - 1 },
        };

        let mut placed_at: Option<i64> = None;
        'slots: for t in candidates {
            // Transactionally place all members.
            scratch.done.clear();
            for &m in members {
                let kind = ddg.op(m).kind();
                let cycle = t + groups.offset(m);
                if mrt.try_place(kind, cycle) {
                    scratch.done.push((kind, cycle));
                } else {
                    for (k, c) in scratch.done.drain(..) {
                        mrt.remove(k, c);
                    }
                    continue 'slots;
                }
            }
            placed_at = Some(t);
            break;
        }
        let t = placed_at?;
        for &m in members {
            start[m.index()] = Some(t + groups.offset(m));
        }
    }
    Some(start.iter().map(|t| t.expect("all ops ordered")).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{mii, SchedError};
    use regpipe_ddg::DdgBuilder;
    use regpipe_ddg::OpKind;

    fn schedule_ok(ddg: &Ddg, machine: &MachineConfig) -> Schedule {
        let s = HrmsScheduler::new()
            .schedule(ddg, machine, &SchedRequest::default())
            .expect("schedulable");
        s.verify(ddg, machine).expect("valid");
        s
    }

    #[test]
    fn single_op_loop() {
        let mut b = DdgBuilder::new("one");
        b.add_op(OpKind::Add, "a");
        let g = b.build().unwrap();
        let s = schedule_ok(&g, &MachineConfig::p1l4());
        assert_eq!(s.ii(), 1);
    }

    #[test]
    fn paper_example_achieves_ii_1_on_uniform_machine() {
        // Figure 2: x(i) = y(i)*a + y(i-3); 4 units, latency 2 -> II = 1.
        let mut b = DdgBuilder::new("fig2");
        let ld = b.add_op(OpKind::Load, "Ld");
        let mul = b.add_op(OpKind::Mul, "*");
        let add = b.add_op(OpKind::Add, "+");
        let st = b.add_op(OpKind::Store, "St");
        b.reg(ld, mul);
        b.reg_dist(ld, add, 3);
        b.reg(mul, add);
        b.reg(add, st);
        let g = b.build().unwrap();
        let m = MachineConfig::uniform(4, 2);
        let s = schedule_ok(&g, &m);
        assert_eq!(s.ii(), 1, "resource bound: 4 ops / 4 units");
    }

    #[test]
    fn recurrence_constrains_ii() {
        let mut b = DdgBuilder::new("rec");
        let a = b.add_op(OpKind::Add, "a");
        let c = b.add_op(OpKind::Add, "c");
        b.reg(a, c);
        b.reg_dist(c, a, 1);
        let g = b.build().unwrap();
        let m = MachineConfig::p2l4();
        let s = schedule_ok(&g, &m);
        assert_eq!(s.ii(), 8);
    }

    #[test]
    fn saturated_memory_unit() {
        let mut b = DdgBuilder::new("mem");
        let l1 = b.add_op(OpKind::Load, "l1");
        let l2 = b.add_op(OpKind::Load, "l2");
        let a = b.add_op(OpKind::Add, "a");
        let st = b.add_op(OpKind::Store, "st");
        b.reg(l1, a);
        b.reg(l2, a);
        b.reg(a, st);
        let g = b.build().unwrap();
        let s = schedule_ok(&g, &MachineConfig::p1l4());
        assert_eq!(s.ii(), 3, "3 memory ops on one unit");
    }

    #[test]
    fn bonded_pair_scheduled_atomically() {
        let mut b = DdgBuilder::new("bond");
        let p = b.add_op(OpKind::Add, "p");
        let s = b.add_op(OpKind::Store, "s");
        b.bond(p, s);
        let l = b.add_op(OpKind::Load, "l");
        let c = b.add_op(OpKind::Mul, "c");
        b.bond(l, c);
        b.mem(s, l, 1);
        let g = b.build().unwrap();
        let m = MachineConfig::p1l4();
        let sched = schedule_ok(&g, &m);
        assert_eq!(sched.start(s) - sched.start(p), 4);
        assert_eq!(sched.start(c) - sched.start(l), 2);
    }

    #[test]
    fn divider_heavy_loop() {
        let mut b = DdgBuilder::new("div");
        let l = b.add_op(OpKind::Load, "l");
        let d = b.add_op(OpKind::Div, "d");
        let st = b.add_op(OpKind::Store, "st");
        b.reg(l, d);
        b.reg(d, st);
        let g = b.build().unwrap();
        let s = schedule_ok(&g, &MachineConfig::p1l4());
        assert_eq!(s.ii(), 17, "non-pipelined divide dominates");
        let s2 = schedule_ok(&g, &MachineConfig::p2l4());
        assert_eq!(s2.ii(), 9, "two div units halve the bound");
    }

    #[test]
    fn honours_min_ii_request() {
        let mut b = DdgBuilder::new("m");
        b.add_op(OpKind::Add, "a");
        let g = b.build().unwrap();
        let m = MachineConfig::p1l4();
        let s = HrmsScheduler::new().schedule(&g, &m, &SchedRequest::starting_at(5)).unwrap();
        assert_eq!(s.ii(), 5);
    }

    #[test]
    fn empty_ii_range_is_an_error() {
        let mut b = DdgBuilder::new("m");
        let a = b.add_op(OpKind::Add, "a");
        let c = b.add_op(OpKind::Add, "c");
        b.reg(a, c);
        b.reg_dist(c, a, 1); // MII 8
        let g = b.build().unwrap();
        let m = MachineConfig::p1l4();
        let err = HrmsScheduler::new()
            .schedule(&g, &m, &SchedRequest { min_ii: None, max_ii: Some(3) })
            .unwrap_err();
        assert!(matches!(err, SchedError::InfeasibleRequest { .. }));
    }

    /// An explicit `max_ii` is the search ceiling, verbatim: large enough to
    /// succeed, it caps nothing; one short of the only feasible II, the
    /// search exhausts with `NoScheduleUpTo` at exactly that bound. (This
    /// pins the simplification of a historical no-op
    /// `.max(request.max_ii.unwrap_or(0))` in the ceiling computation.)
    #[test]
    fn explicit_max_ii_is_honoured_verbatim() {
        let mut b = DdgBuilder::new("m");
        let a = b.add_op(OpKind::Add, "a");
        let c = b.add_op(OpKind::Add, "c");
        b.reg(a, c);
        b.reg_dist(c, a, 1); // MII 8 on P1L4
        let g = b.build().unwrap();
        let m = MachineConfig::p1l4();
        let sched = HrmsScheduler::new()
            .schedule(&g, &m, &SchedRequest { min_ii: None, max_ii: Some(8) })
            .expect("II 8 is feasible");
        assert_eq!(sched.ii(), 8);
        // A ceiling above the fallback bound must still be respected as
        // given (the old dead expression could never change it either).
        let huge = crate::fallback_max_ii(&g, &m) + 100;
        let sched = HrmsScheduler::new()
            .schedule(&g, &m, &SchedRequest { min_ii: None, max_ii: Some(huge) })
            .unwrap();
        assert_eq!(sched.ii(), 8, "search still stops at the first feasible II");
        // min_ii above every feasible II with a matching max_ii: exhausted.
        let err = HrmsScheduler::new()
            .schedule(&g, &m, &SchedRequest { min_ii: Some(9), max_ii: Some(7) })
            .unwrap_err();
        assert!(matches!(err, SchedError::InfeasibleRequest { min_ii: 9, max_ii: 7 }));
    }

    #[test]
    fn wide_independent_ops_fill_slots() {
        // 8 independent adds on 2 adders: II = 4, all slots used.
        let mut b = DdgBuilder::new("wide");
        for i in 0..8 {
            b.add_op(OpKind::Add, format!("a{i}"));
        }
        let g = b.build().unwrap();
        let s = schedule_ok(&g, &MachineConfig::p2l4());
        assert_eq!(s.ii(), 4);
    }

    #[test]
    fn stress_random_graphs_schedule_and_verify() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        let machines = [MachineConfig::p1l4(), MachineConfig::p2l4(), MachineConfig::p2l6()];
        for case in 0..150 {
            let n = rng.random_range(2..24usize);
            let mut b = DdgBuilder::new(format!("s{case}"));
            let kinds = [
                OpKind::Load,
                OpKind::Store,
                OpKind::Add,
                OpKind::Mul,
                OpKind::Copy,
                OpKind::Div,
            ];
            let ops: Vec<OpId> = (0..n)
                .map(|i| b.add_op(kinds[rng.random_range(0..kinds.len())], format!("n{i}")))
                .collect();
            for _ in 0..rng.random_range(0..2 * n) {
                let f = ops[rng.random_range(0..n)];
                let t = ops[rng.random_range(0..n)];
                if f == t {
                    continue;
                }
                let dist =
                    if t > f { rng.random_range(0..3u32) } else { rng.random_range(1..3u32) };
                if b.clone().build_unchecked().op(f).kind() == OpKind::Store {
                    b.mem(f, t, dist.max(if t > f { 0 } else { 1 }));
                } else {
                    b.reg_dist(f, t, dist);
                }
            }
            let Ok(g) = b.build() else { continue };
            let m = &machines[case % machines.len()];
            let s = HrmsScheduler::new()
                .schedule(&g, m, &SchedRequest::default())
                .unwrap_or_else(|e| panic!("case {case}: {e}\n{g}"));
            s.verify(&g, m).unwrap_or_else(|e| panic!("case {case}: {e}\n{g}\n{s}"));
            assert!(s.ii() >= mii(&g, m));
        }
    }
    #[test]
    fn self_recurrence_group_is_ordered_first() {
        // An accumulator self-recurrence is a one-group recurrence: the
        // ordering phase must treat it as a recurrence set (highest RecMII
        // first), not as leftover acyclic work ordered after everything else.
        let mut b = DdgBuilder::new("acc");
        let feeders: Vec<_> = (0..4).map(|i| b.add_op(OpKind::Load, format!("f{i}"))).collect();
        let acc = b.add_op(OpKind::Div, "acc"); // latency makes its RecMII dominate
        for &f in &feeders {
            b.reg(f, acc);
        }
        b.reg_dist(acc, acc, 1);
        let g = b.build().unwrap();
        let m = MachineConfig::p2l4();
        let order =
            HrmsScheduler::new().ordering(&g, &m, mii(&g, &m)).expect("feasible analysis");
        assert_eq!(order[0], acc, "dominant self-recurrence must lead the order: {order:?}");
        schedule_ok(&g, &m);
    }
}
