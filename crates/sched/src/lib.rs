//! Modulo scheduling.
//!
//! This crate implements the scheduling layer of the pipeline:
//!
//! * [`rec_mii`] / [`mii`] — the recurrence- and resource-constrained lower
//!   bounds on the initiation interval (paper Section 2.2).
//! * [`Schedule`] — a modulo schedule (II + start cycle per operation) with
//!   full verification against the dependence graph and machine model.
//! * [`HrmsScheduler`] — a register-sensitive modulo scheduler in the
//!   HRMS/Swing family used by the paper as its core scheduler: an ordering
//!   phase guarantees every operation is placed while only its predecessors
//!   *or* only its successors are already scheduled, and a bidirectional
//!   placement phase puts each operation as close to its neighbours as the
//!   modulo reservation table allows, keeping lifetimes short.
//! * [`SmsScheduler`] — Swing Modulo Scheduling, the successor heuristic by
//!   the same group: the same bidirectional placement, but an ordering
//!   phase driven by each node's combined ASAP/ALAP *swing* priority.
//! * [`AsapScheduler`] — a register-insensitive top-down baseline
//!   (the comparison point the paper cites from lifetime-insensitive
//!   schedulers).
//! * [`ExactScheduler`] — a branch-and-bound **optimality oracle**: it
//!   enumerates IIs from MII upward and exhaustively refutes each
//!   infeasible II within a deterministic node budget, reporting
//!   [`ExactStatus::Proven`] or [`ExactStatus::BudgetExhausted`] so
//!   results are never silently wrong (`regpipe gap` measures every
//!   heuristic against it).
//! * [`SchedulerKind`] — the scheduler registry: a serializable selector
//!   over the registered schedulers that itself implements [`Scheduler`],
//!   so the choice of scheduler is a first-class axis of the evaluation
//!   matrix (`--scheduler hrms|sms|asap|exact` on the CLI).
//! * [`Kernel`] — kernel extraction with stage annotations (Figure 2e).
//!
//! `docs/algorithms.md` in the repository walks the HRMS and SMS ordering
//! and placement phases step by step on the same kernels, with the
//! lifetime/MaxLive tables that show where and why the orders diverge.
//!
//! Fixed (bonded) edges in the graph are honoured as the paper's *complex
//! operations*: bonded operations are placed atomically at exact offsets
//! (Section 4.3), which is what guarantees spill convergence.
//!
//! # Example
//!
//! ```
//! use regpipe_ddg::{DdgBuilder, OpKind};
//! use regpipe_machine::MachineConfig;
//! use regpipe_sched::{mii, HrmsScheduler, Scheduler, SchedRequest};
//!
//! let mut b = DdgBuilder::new("dot");
//! let lx = b.add_op(OpKind::Load, "lx");
//! let ly = b.add_op(OpKind::Load, "ly");
//! let m = b.add_op(OpKind::Mul, "m");
//! let acc = b.add_op(OpKind::Add, "acc");
//! b.reg(lx, m);
//! b.reg(ly, m);
//! b.reg(m, acc);
//! b.reg_dist(acc, acc, 1); // sum += x*y : a recurrence
//! let g = b.build()?;
//!
//! let machine = MachineConfig::p2l4();
//! let sched = HrmsScheduler::new()
//!     .schedule(&g, &machine, &SchedRequest::default())
//!     .expect("schedulable");
//! assert_eq!(sched.ii(), mii(&g, &machine)); // optimal: II = MII = 4
//! sched.verify(&g, &machine).expect("valid schedule");
//! # Ok::<(), regpipe_ddg::DdgError>(())
//! ```

// Every public item of this crate is documented; CI turns gaps into errors.
#![warn(missing_docs)]

mod analysis;
mod asap_sched;
mod exact;
mod groups;
mod hrms;
mod kernel;
mod loop_analysis;
mod pipeline;
mod recmii;
mod registry;
mod schedule;
mod sms;
mod stage;

pub mod deadline;

pub use analysis::TimeAnalysis;
pub use asap_sched::AsapScheduler;
pub use exact::{ExactOutcome, ExactScheduler, ExactStatus, DEFAULT_NODE_BUDGET};
pub use groups::ComplexGroups;
pub use hrms::HrmsScheduler;
pub use kernel::{Kernel, KernelSlot};
pub use loop_analysis::LoopAnalysis;
pub use pipeline::{PipelinedLoop, TraceEntry};
pub use recmii::{per_recurrence_bounds, rec_mii, RecurrenceBound};
pub use registry::SchedulerKind;
pub use schedule::{Schedule, VerifyError};
pub use sms::SmsScheduler;
pub use stage::stage_schedule;

use std::error::Error;
use std::fmt;

use regpipe_ddg::Ddg;
use regpipe_machine::{res_mii, MachineConfig};

/// The minimum initiation interval: `max(ResMII, RecMII)` (Section 2.2).
pub fn mii(ddg: &Ddg, machine: &MachineConfig) -> u32 {
    res_mii(machine, ddg).max(rec_mii(ddg, machine))
}

/// Edge timing: the latency charged on a dependence edge.
///
/// Register and memory edges charge the producer's machine latency;
/// ordering edges charge zero (the consumer may start as soon as the
/// producer *starts*, minus δ·II).
pub fn edge_latency(machine: &MachineConfig, ddg: &Ddg, e: &regpipe_ddg::Edge) -> i64 {
    match e.kind() {
        regpipe_ddg::EdgeKind::Order => 0,
        _ => i64::from(machine.latency(ddg.op(e.from()).kind())),
    }
}

/// Options controlling a scheduling run.
#[derive(Clone, Debug, Default)]
pub struct SchedRequest {
    /// Lower bound for the II search; the scheduler starts at
    /// `max(min_ii, MII)`. The spill driver's *last-II pruning*
    /// (paper Section 4.5) is implemented by raising this.
    pub min_ii: Option<u32>,
    /// Upper bound for the II search (inclusive). Defaults to a bound at
    /// which any loop is schedulable sequentially.
    pub max_ii: Option<u32>,
}

impl SchedRequest {
    /// A request starting the II search at `min_ii`.
    pub fn starting_at(min_ii: u32) -> Self {
        SchedRequest { min_ii: Some(min_ii), max_ii: None }
    }

    /// A request for exactly one candidate II (used by binary-search modes).
    pub fn exactly(ii: u32) -> Self {
        SchedRequest { min_ii: Some(ii), max_ii: Some(ii) }
    }
}

/// Scheduling failure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SchedError {
    /// No valid schedule was found up to (and including) `max_ii`.
    NoScheduleUpTo {
        /// The largest II attempted.
        max_ii: u32,
    },
    /// The request was inconsistent (e.g. `max_ii < MII`).
    InfeasibleRequest {
        /// The effective lower bound.
        min_ii: u32,
        /// The requested upper bound.
        max_ii: u32,
    },
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::NoScheduleUpTo { max_ii } => {
                write!(f, "no modulo schedule found with II <= {max_ii}")
            }
            SchedError::InfeasibleRequest { min_ii, max_ii } => {
                write!(f, "requested II range [{min_ii}, {max_ii}] is empty")
            }
        }
    }
}

impl Error for SchedError {}

/// A modulo scheduler.
///
/// Implementations search increasing IIs starting at `max(MII, min_ii)`
/// until a valid schedule is found or `max_ii` is exceeded. The trait is the
/// plug-in point the paper insists on: the spilling framework "can be
/// applied to any software pipelining technique".
pub trait Scheduler {
    /// A short human-readable name (for reports).
    fn name(&self) -> &'static str;

    /// Schedules `ddg` on `machine`.
    ///
    /// # Errors
    ///
    /// Returns [`SchedError::NoScheduleUpTo`] if the II search is exhausted
    /// and [`SchedError::InfeasibleRequest`] for empty II ranges.
    fn schedule(
        &self,
        ddg: &Ddg,
        machine: &MachineConfig,
        request: &SchedRequest,
    ) -> Result<Schedule, SchedError>;

    /// Schedules within a prebuilt [`LoopAnalysis`] context, letting
    /// repeated calls on the same loop (II sweeps, best-of-all probes,
    /// spill rounds between graph rewrites) share every II-independent
    /// computation.
    ///
    /// The default implementation ignores the cache and calls
    /// [`Scheduler::schedule`]; the bundled schedulers override it. Results
    /// must be identical either way — the context is a pure function of
    /// `(ddg, machine)`.
    ///
    /// # Errors
    ///
    /// As for [`Scheduler::schedule`].
    fn schedule_in(
        &self,
        ctx: &LoopAnalysis<'_>,
        request: &SchedRequest,
    ) -> Result<Schedule, SchedError> {
        self.schedule(ctx.ddg(), ctx.machine(), request)
    }
}

/// A defensive upper bound on the II at which scheduling always succeeds:
/// the fully sequential schedule (sum of occupancies and latencies).
pub fn fallback_max_ii(ddg: &Ddg, machine: &MachineConfig) -> u32 {
    let mut total: u64 = 1;
    for (_, n) in ddg.ops() {
        total += u64::from(machine.latency(n.kind()).max(machine.occupancy(n.kind())));
    }
    u32::try_from(total.min(u64::from(u32::MAX))).unwrap_or(u32::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use regpipe_ddg::{DdgBuilder, OpKind};

    #[test]
    fn mii_takes_the_max_of_both_bounds() {
        // Resource-bound loop: 3 loads on one memory unit.
        let mut b = DdgBuilder::new("res");
        for i in 0..3 {
            b.add_op(OpKind::Load, format!("l{i}"));
        }
        let g = b.build().unwrap();
        let m = MachineConfig::p1l4();
        assert_eq!(mii(&g, &m), 3);

        // Recurrence-bound loop: add chain with distance 1 back edge.
        let mut b = DdgBuilder::new("rec");
        let a = b.add_op(OpKind::Add, "a");
        let c = b.add_op(OpKind::Add, "c");
        b.reg(a, c);
        b.reg_dist(c, a, 1);
        let g = b.build().unwrap();
        assert_eq!(mii(&g, &m), 8, "two adds of latency 4 over distance 1");
    }

    #[test]
    fn fallback_bound_is_generous() {
        let mut b = DdgBuilder::new("f");
        b.add_op(OpKind::Div, "d");
        b.add_op(OpKind::Add, "a");
        let g = b.build().unwrap();
        let m = MachineConfig::p1l4();
        assert!(fallback_max_ii(&g, &m) >= 17 + 4);
    }

    #[test]
    fn sched_error_displays() {
        let e = SchedError::NoScheduleUpTo { max_ii: 9 };
        assert!(e.to_string().contains("9"));
    }
}
