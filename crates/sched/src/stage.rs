//! Stage scheduling: a register-reducing post-pass.
//!
//! The paper's related work (its reference [13], Eichenberger & Davidson,
//! MICRO-28) reduces the register requirement of a finished modulo schedule
//! *without* touching the II: moving an operation by a whole multiple of II
//! keeps its modulo reservation slot — resources stay legal by construction
//! — while the dependence slack often allows entire stages of movement that
//! shorten lifetimes.
//!
//! This module implements a greedy variant: complex-operation groups are
//! repeatedly offered every feasible `k·II` shift given their neighbours'
//! current positions, and take the one minimizing the total lifetime sum
//! (the integral of register pressure). It converges because the total
//! lifetime strictly decreases with every accepted move.
//!
//! Used standalone or as a cheap companion to the spilling framework (the
//! paper lists post-pass reduction among the alternatives it contrasts
//! with).

use regpipe_ddg::{Ddg, EdgeKind};
use regpipe_machine::MachineConfig;

use crate::edge_latency;
use crate::groups::ComplexGroups;
use crate::schedule::Schedule;

/// Applies stage scheduling to `schedule`; returns a schedule with the same
/// II and modulo slots but (weakly) smaller total lifetime.
///
/// The result always verifies if the input did.
pub fn stage_schedule(ddg: &Ddg, machine: &MachineConfig, schedule: &Schedule) -> Schedule {
    let ii = i64::from(schedule.ii());
    let groups = ComplexGroups::new(ddg, machine);
    let mut start: Vec<i64> = schedule.starts().to_vec();

    // Group leaders in a fixed processing order.
    let leaders: Vec<_> = (0..groups.len()).map(|g| groups.leader(g)).collect();

    // A move never needs to exceed the schedule span: beyond it, no
    // lifetime it touches can keep shrinking. This also bounds the scan for
    // groups without external dependences (which have nothing to optimize).
    let span_stages = schedule.last_start() / ii + 2;

    let mut improved = true;
    let mut rounds = 0usize;
    while improved && rounds < 64 {
        improved = false;
        rounds += 1;
        for &leader in &leaders {
            let members = groups.members_of(leader);
            // Feasible shift range in whole IIs, from every non-group edge.
            let mut min_shift = -span_stages * ii;
            let mut max_shift = span_stages * ii;
            let mut has_external = false;
            for &m in members {
                for e in ddg.in_edges(m) {
                    if groups.group_of(e.from()) == groups.group_of(m) {
                        continue;
                    }
                    let need = start[e.from().index()] + edge_latency(machine, ddg, e)
                        - ii * i64::from(e.distance());
                    // start[m] + shift >= need
                    min_shift = min_shift.max(need - start[m.index()]);
                    has_external = true;
                }
                for e in ddg.out_edges(m) {
                    if groups.group_of(e.to()) == groups.group_of(m) {
                        continue;
                    }
                    let limit = start[e.to().index()] - edge_latency(machine, ddg, e)
                        + ii * i64::from(e.distance());
                    // start[m] + shift <= limit
                    max_shift = max_shift.min(limit - start[m.index()]);
                    has_external = true;
                }
            }
            if !has_external {
                continue; // isolated group: no lifetime depends on it
            }
            // Whole-stage candidates within the window.
            let k_lo = min_shift.div_euclid(ii) + i64::from(min_shift.rem_euclid(ii) != 0);
            let k_hi = max_shift.div_euclid(ii);
            if k_lo > k_hi || (k_lo == 0 && k_hi == 0) {
                continue;
            }
            let base_cost = total_lifetime(ddg, &start, ii);
            let mut best: Option<(i64, i64)> = None; // (cost, k)
            for k in k_lo..=k_hi {
                if k == 0 {
                    continue;
                }
                for &m in members {
                    start[m.index()] += k * ii;
                }
                let cost = total_lifetime(ddg, &start, ii);
                for &m in members {
                    start[m.index()] -= k * ii;
                }
                if cost < base_cost && best.is_none_or(|(c, _)| cost < c) {
                    best = Some((cost, k));
                }
            }
            if let Some((_, k)) = best {
                for &m in members {
                    start[m.index()] += k * ii;
                }
                improved = true;
            }
        }
    }
    Schedule::with_provenance(schedule.ii(), start, "stage-scheduled", schedule.iis_tried())
}

/// Σ over live values of their lifetime length — the integral of register
/// pressure over one II window (dividing by II gives the average pressure;
/// minimizing the sum minimizes the average and usually MaxLive).
fn total_lifetime(ddg: &Ddg, start: &[i64], ii: i64) -> i64 {
    let mut total = 0i64;
    for (id, node) in ddg.ops() {
        if !node.kind().defines_value() {
            continue;
        }
        let mut end: Option<i64> = None;
        for e in ddg.out_edges(id) {
            if e.kind() != EdgeKind::RegFlow {
                continue;
            }
            let t = start[e.to().index()] + ii * i64::from(e.distance());
            end = Some(end.map_or(t, |x: i64| x.max(t)));
        }
        if let Some(end) = end {
            total += (end - start[id.index()]).max(0);
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HrmsScheduler, SchedRequest, Scheduler};
    use regpipe_ddg::{DdgBuilder, OpKind};

    #[test]
    fn stage_scheduling_preserves_validity_and_ii() {
        let mut b = DdgBuilder::new("w");
        let shared = b.add_op(OpKind::Load, "ld");
        for i in 0..5 {
            let m = b.add_op(OpKind::Mul, format!("m{i}"));
            b.reg(shared, m);
            let s = b.add_op(OpKind::Store, format!("s{i}"));
            b.reg(m, s);
        }
        let g = b.build().unwrap();
        let machine = MachineConfig::p2l4();
        let s = HrmsScheduler::new().schedule(&g, &machine, &SchedRequest::default()).unwrap();
        let post = stage_schedule(&g, &machine, &s);
        assert_eq!(post.ii(), s.ii());
        post.verify(&g, &machine).expect("still valid");
    }

    #[test]
    fn stage_scheduling_shrinks_stretched_lifetimes() {
        // Hand-build a bad schedule: consumer three stages late. The ops
        // use three distinct FU classes so the modulo slots stay legal.
        let mut b = DdgBuilder::new("bad");
        let p = b.add_op(OpKind::Add, "p");
        let c = b.add_op(OpKind::Mul, "c");
        let st = b.add_op(OpKind::Store, "st");
        b.reg(p, c);
        b.reg(c, st);
        let g = b.build().unwrap();
        let machine = MachineConfig::p1l4();
        // II = 4: p@0, c@12 (8 cycles of pointless slack), st@16.
        let bad = Schedule::new(4, vec![0, 12, 16]);
        bad.verify(&g, &machine).unwrap();
        let post = stage_schedule(&g, &machine, &bad);
        post.verify(&g, &machine).unwrap();
        let lt = |s: &Schedule| (s.start(c) - s.start(p)) + (s.start(st) - s.start(c));
        assert!(lt(&post) < lt(&bad), "{} vs {}", lt(&post), lt(&bad));
        assert_eq!(post.start(c) - post.start(p), 4, "one stage is the minimum");
    }

    #[test]
    fn modulo_slots_are_preserved() {
        let mut b = DdgBuilder::new("slots");
        let p = b.add_op(OpKind::Add, "p");
        let c = b.add_op(OpKind::Mul, "c");
        b.reg(p, c);
        let g = b.build().unwrap();
        let machine = MachineConfig::p1l4();
        let bad = Schedule::new(3, vec![1, 14]);
        let post = stage_schedule(&g, &machine, &bad);
        for (id, _) in g.ops() {
            assert_eq!(
                post.start(id).rem_euclid(3),
                bad.start(id).rem_euclid(3),
                "stage moves never change the modulo slot"
            );
        }
    }

    #[test]
    fn bonded_groups_move_as_units() {
        let mut b = DdgBuilder::new("bond");
        let l = b.add_op(OpKind::Load, "l");
        let c = b.add_op(OpKind::Mul, "c");
        b.bond(l, c);
        let p = b.add_op(OpKind::Add, "p");
        b.reg(p, c);
        let g = b.build().unwrap();
        let machine = MachineConfig::p2l4();
        // p@0; group placed far away: l@20, c@22 (II=4).
        let bad = Schedule::from_fixed(4, &[(l, 20), (c, 22), (p, 0)]);
        bad.verify(&g, &machine).unwrap();
        let post = stage_schedule(&g, &machine, &bad);
        post.verify(&g, &machine).unwrap();
        assert_eq!(post.start(c) - post.start(l), 2, "bond offset intact");
        assert!(post.start(c) - post.start(p) < 22, "group slid toward p");
    }

    #[test]
    fn already_tight_schedules_are_untouched() {
        let mut b = DdgBuilder::new("tight");
        let p = b.add_op(OpKind::Add, "p");
        let c = b.add_op(OpKind::Store, "c");
        b.reg(p, c);
        let g = b.build().unwrap();
        let machine = MachineConfig::p1l4();
        let s = Schedule::new(4, vec![0, 4]);
        let post = stage_schedule(&g, &machine, &s);
        assert_eq!(post.starts(), s.starts());
    }
}
