//! Register-insensitive ASAP baseline scheduler.

use regpipe_ddg::Ddg;
use regpipe_machine::MachineConfig;

use crate::analysis::TimeAnalysis;
use crate::hrms::{place_order, PlaceMode, PlaceScratch};
use crate::loop_analysis::LoopAnalysis;
use crate::{SchedError, SchedRequest, Schedule, Scheduler};

/// A top-down, register-*insensitive* modulo scheduler.
///
/// Operations are placed in topological (condensation) order, each as early
/// as the dependences and the modulo reservation table allow. This is the
/// classical list-scheduling approach that maximizes distance between
/// producers and consumers scheduled long after them — exactly the lifetime
/// stretching that register-sensitive schedulers like HRMS avoid. The paper
/// cites results with such a scheduler (its reference \[21\]) as the
/// motivation for register-aware scheduling; `regpipe` ships it as the
/// baseline for ablation experiments.
#[derive(Clone, Copy, Default, Debug)]
pub struct AsapScheduler {
    _private: (),
}

impl AsapScheduler {
    /// Creates the scheduler.
    pub fn new() -> Self {
        AsapScheduler { _private: () }
    }
}

impl Scheduler for AsapScheduler {
    fn name(&self) -> &'static str {
        "asap"
    }

    fn schedule(
        &self,
        ddg: &Ddg,
        machine: &MachineConfig,
        request: &SchedRequest,
    ) -> Result<Schedule, SchedError> {
        self.schedule_in(&LoopAnalysis::new(ddg, machine), request)
    }

    fn schedule_in(
        &self,
        ctx: &LoopAnalysis<'_>,
        request: &SchedRequest,
    ) -> Result<Schedule, SchedError> {
        let lower = ctx.mii().max(request.min_ii.unwrap_or(1));
        let upper = request.max_ii.unwrap_or_else(|| ctx.fallback_max_ii());
        if upper < lower {
            return Err(SchedError::InfeasibleRequest { min_ii: lower, max_ii: upper });
        }
        // Forward topological order of group leaders over zero-distance
        // edges: every placement window is bounded below by already-placed
        // intra-iteration predecessors and above only by loop-carried edges,
        // which relax as II grows. Cached as the context's fallback order.
        let mut scratch = PlaceScratch::new(ctx.ddg().num_ops());
        let mut tried = 0u32;
        let mut prev: Option<TimeAnalysis> = None;
        for ii in lower..=upper {
            tried += 1;
            let Some(analysis) = ctx.time_analysis(ii, prev.as_ref()) else {
                continue;
            };
            if let Some(starts) = place_order(
                ctx,
                ii,
                &ctx.fallback,
                &analysis,
                PlaceMode::AsapClamped,
                &mut scratch,
            ) {
                return Ok(Schedule::with_provenance(ii, starts, "asap", tried));
            }
            prev = Some(analysis);
        }
        Err(SchedError::NoScheduleUpTo { max_ii: upper })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regpipe_ddg::{DdgBuilder, OpKind};

    #[test]
    fn schedules_basic_loops() {
        let mut b = DdgBuilder::new("basic");
        let l = b.add_op(OpKind::Load, "l");
        let a = b.add_op(OpKind::Add, "a");
        let s = b.add_op(OpKind::Store, "s");
        b.reg(l, a);
        b.reg(a, s);
        let g = b.build().unwrap();
        let m = MachineConfig::p1l4();
        let sched = AsapScheduler::new().schedule(&g, &m, &SchedRequest::default()).unwrap();
        sched.verify(&g, &m).unwrap();
        assert_eq!(sched.ii(), 2, "two memory ops on one unit");
    }

    #[test]
    fn handles_recurrences() {
        let mut b = DdgBuilder::new("rec");
        let a = b.add_op(OpKind::Add, "a");
        let c = b.add_op(OpKind::Mul, "c");
        b.reg(a, c);
        b.reg_dist(c, a, 2);
        let g = b.build().unwrap();
        let m = MachineConfig::p2l4();
        let sched = AsapScheduler::new().schedule(&g, &m, &SchedRequest::default()).unwrap();
        sched.verify(&g, &m).unwrap();
        assert_eq!(sched.ii(), 4, "cycle latency 8 over distance 2");
    }

    #[test]
    fn asap_stretches_lifetimes_relative_to_hrms() {
        use crate::HrmsScheduler;
        // A producer with a long independent side chain: HRMS places the
        // consumer near the producer, ASAP pushes ops early regardless.
        let mut b = DdgBuilder::new("stretch");
        let ld = b.add_op(OpKind::Load, "ld");
        let st = b.add_op(OpKind::Store, "st");
        b.reg(ld, st);
        // Independent noise filling the machine.
        for i in 0..6 {
            let x = b.add_op(OpKind::Add, format!("x{i}"));
            let y = b.add_op(OpKind::Mul, format!("y{i}"));
            b.reg(x, y);
        }
        let g = b.build().unwrap();
        let m = MachineConfig::p2l4();
        let hrms = HrmsScheduler::new().schedule(&g, &m, &SchedRequest::default()).unwrap();
        let asap = AsapScheduler::new().schedule(&g, &m, &SchedRequest::default()).unwrap();
        hrms.verify(&g, &m).unwrap();
        asap.verify(&g, &m).unwrap();
        let lt = |s: &Schedule| s.start(st) - s.start(ld);
        assert!(
            lt(&hrms) <= lt(&asap),
            "hrms lifetime {} should not exceed asap lifetime {}",
            lt(&hrms),
            lt(&asap)
        );
    }
}
