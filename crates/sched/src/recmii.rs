//! Recurrence-constrained minimum initiation interval.

use regpipe_ddg::algo::{elementary_circuits, recurrences};
use regpipe_ddg::{Ddg, OpId};
use regpipe_machine::MachineConfig;

use crate::edge_latency;
use crate::loop_analysis::{timed_edges, TimedEdge};

/// Computes `RecMII`: the smallest II such that no dependence cycle is
/// over-constrained, i.e. for every cycle `C`, `Lat(C) ≤ II · Dist(C)`
/// (paper Section 2.2). Returns 1 for acyclic graphs.
///
/// Implemented as a binary search over II with positive-cycle detection on
/// edge weights `lat(e) − II·δ(e)` (Bellman–Ford longest-path relaxation:
/// failure to converge within `n` passes proves a positive cycle), which is
/// exact and avoids enumerating the possibly-exponential set of circuits.
/// One relaxation-state buffer is allocated for the whole search and reused
/// across probes, and every infeasible probe extracts a positive-weight
/// circuit from the predecessor graph — `⌈Lat/Dist⌉` of that circuit is a
/// valid lower bound that usually collapses the remaining search range in
/// one step.
pub fn rec_mii(ddg: &Ddg, machine: &MachineConfig) -> u32 {
    rec_mii_over(ddg.num_ops(), &timed_edges(ddg, machine), !recurrences(ddg).is_empty())
}

/// [`rec_mii`] over pre-resolved edge timings (the cached entry point used
/// by [`crate::LoopAnalysis`]). `has_recurrence` short-circuits acyclic
/// graphs to 1 exactly as the standalone function does.
pub(crate) fn rec_mii_over(n: usize, edges: &[TimedEdge], has_recurrence: bool) -> u32 {
    if !has_recurrence {
        return 1;
    }
    // Upper bound: any circuit's latency is at most the sum of all edge
    // latencies, and its distance is at least 1.
    let hi_bound: i64 = edges.iter().map(|e| e.lat.max(0)).sum::<i64>().max(1);
    let mut scratch = CycleScratch::new(n);
    let mut lo = 1u32;
    let mut hi = u32::try_from(hi_bound).unwrap_or(u32::MAX);
    // Invariant: feasible(hi) is true, feasible(lo - 1) is false (or lo=1).
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        match scratch.positive_cycle(edges, mid) {
            Some(circuit) => lo = circuit.bound().max(mid + 1).min(hi),
            None => hi = mid,
        }
    }
    lo
}

/// A positive-weight circuit found by a RecMII probe: its total latency and
/// dependence distance.
#[derive(Clone, Copy, Debug)]
struct CriticalCycle {
    latency: i64,
    distance: i64,
}

impl CriticalCycle {
    /// The II bound this circuit implies. The circuit is a genuine cycle of
    /// the graph, so `RecMII ≥ ⌈latency/distance⌉`; found at an infeasible
    /// probe, the bound is combined with `mid + 1` by the caller (the
    /// predecessor graph can in principle yield a zero-weight cycle, whose
    /// bound degenerates to `mid`).
    fn bound(self) -> u32 {
        if self.distance <= 0 {
            return 1; // malformed (validation forbids 0-distance cycles)
        }
        let b = (self.latency + self.distance - 1) / self.distance;
        u32::try_from(b.max(1)).unwrap_or(u32::MAX)
    }
}

/// Reusable Bellman–Ford state for positive-cycle probes: per-node path
/// values and predecessor edges, reset (not reallocated) per probe.
struct CycleScratch {
    n: usize,
    val: Vec<i64>,
    /// Index into the probe's edge list of the relaxation that last raised
    /// each node; `usize::MAX` when the node still sits at its 0 init.
    pred: Vec<usize>,
    /// Walk buffer for circuit extraction.
    seen_at: Vec<usize>,
}

impl CycleScratch {
    fn new(n: usize) -> Self {
        CycleScratch { n, val: vec![0; n], pred: vec![usize::MAX; n], seen_at: vec![0; n] }
    }

    /// Probes one II: `Some(circuit)` when a positive-weight cycle exists
    /// under `w(e) = lat(e) − II·δ(e)` (i.e. the II is infeasible), `None`
    /// when the II satisfies every recurrence.
    ///
    /// Longest-path relaxation from an all-zero init converges within `n`
    /// passes exactly when no positive cycle exists (simple paths have at
    /// most `n − 1` edges); one more changing pass proves infeasibility,
    /// and walking the predecessor edges from a node updated in that pass
    /// lands on a circuit of non-negative weight whose `⌈Lat/Dist⌉` seeds
    /// the search's next lower bound.
    fn positive_cycle(&mut self, edges: &[TimedEdge], ii: u32) -> Option<CriticalCycle> {
        let n = self.n;
        if n == 0 {
            return None;
        }
        self.val.fill(0);
        self.pred.fill(usize::MAX);
        let ii64 = i64::from(ii);
        let mut last_raised = usize::MAX;
        for _pass in 0..=n {
            let mut changed = false;
            for (idx, e) in edges.iter().enumerate() {
                let cand = self.val[e.from] + e.lat - ii64 * e.dist;
                if cand > self.val[e.to] {
                    self.val[e.to] = cand;
                    self.pred[e.to] = idx;
                    last_raised = e.to;
                    changed = true;
                }
            }
            if !changed {
                return None;
            }
        }
        Some(self.extract_cycle(edges, last_raised))
    }

    /// Walks predecessor edges from `start` until a node repeats, then sums
    /// the latencies/distances around the repeated segment. A predecessor
    /// chain after `n` changing passes is longer than any simple path, so a
    /// repeat is guaranteed; if the walk falls off a 0-init node anyway
    /// (defensive), the degenerate `(0, 0)` circuit makes [`bound`]
    /// harmless.
    fn extract_cycle(&mut self, edges: &[TimedEdge], start: usize) -> CriticalCycle {
        const UNSEEN: usize = usize::MAX;
        self.seen_at.fill(UNSEEN);
        let mut path: Vec<usize> = Vec::new(); // edge indices walked
        let mut v = start;
        loop {
            if self.seen_at[v] != UNSEEN {
                // The walk from `seen_at[v]` onward is the circuit.
                let mut latency = 0i64;
                let mut distance = 0i64;
                for &idx in &path[self.seen_at[v]..] {
                    latency += edges[idx].lat;
                    distance += edges[idx].dist;
                }
                return CriticalCycle { latency, distance };
            }
            self.seen_at[v] = path.len();
            let idx = self.pred[v];
            if idx == usize::MAX {
                return CriticalCycle { latency: 0, distance: 0 };
            }
            path.push(idx);
            v = edges[idx].from;
        }
    }
}

/// Recurrence bound of a node subset: the smallest II with no positive
/// cycle in the induced subgraph (used by the ordering phase to rank
/// recurrence sets; II-independent, so [`crate::LoopAnalysis`] computes it
/// once per loop).
pub(crate) fn subset_rec_bound(ddg: &Ddg, machine: &MachineConfig, members: &[OpId]) -> u32 {
    let k = members.len();
    if k == 0 {
        return 1;
    }
    let mut pos = vec![usize::MAX; ddg.num_ops()];
    for (i, m) in members.iter().enumerate() {
        pos[m.index()] = i;
    }
    let edges: Vec<TimedEdge> = ddg
        .edges()
        .filter(|e| pos[e.from().index()] != usize::MAX && pos[e.to().index()] != usize::MAX)
        .map(|e| TimedEdge {
            from: pos[e.from().index()],
            to: pos[e.to().index()],
            lat: edge_latency(machine, ddg, e),
            dist: i64::from(e.distance()),
        })
        .collect();
    let hi_bound: i64 = edges.iter().map(|e| e.lat.max(0)).sum::<i64>().max(1);
    let mut scratch = CycleScratch::new(k);
    let mut lo = 1u32;
    let mut hi = u32::try_from(hi_bound).unwrap_or(u32::MAX);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        match scratch.positive_cycle(&edges, mid) {
            Some(circuit) => lo = circuit.bound().max(mid + 1).min(hi),
            None => hi = mid,
        }
    }
    lo
}

/// The II bound contributed by one recurrence.
#[derive(Clone, PartialEq, Debug)]
pub struct RecurrenceBound {
    /// The operations of the critical circuit.
    pub ops: Vec<OpId>,
    /// Total latency around the circuit.
    pub latency: i64,
    /// Total dependence distance around the circuit.
    pub distance: u32,
    /// The bound `⌈latency / distance⌉`.
    pub bound: u32,
}

/// Exact per-recurrence diagnostics: for every elementary circuit, its
/// `⌈Lat/Dist⌉` bound, sorted descending by bound.
///
/// Enumerates circuits with Johnson's algorithm (capped at `cap`); returns
/// `None` when the graph has too many circuits, in which case callers should
/// fall back to the scalar [`rec_mii`].
pub fn per_recurrence_bounds(
    ddg: &Ddg,
    machine: &MachineConfig,
    cap: usize,
) -> Option<Vec<RecurrenceBound>> {
    let circuits = elementary_circuits(ddg, cap)?;
    let mut out: Vec<RecurrenceBound> = circuits
        .into_iter()
        .map(|c| {
            // Latency around the circuit: sum of per-hop edge latencies.
            // Re-derive hop latencies from node kinds (an Order edge would
            // have latency zero, but circuits through Order edges still
            // constrain ordering): use the minimal-latency interpretation
            // consistent with `rec_mii` by checking actual edges.
            let ops = c.ops().to_vec();
            let k = ops.len();
            let mut latency = 0i64;
            for i in 0..k {
                let from = ops[i];
                let to = ops[(i + 1) % k];
                // Minimal-distance parallel edge was already selected by the
                // circuit enumerator; charge the max-latency edge kind
                // between the pair that matches the chosen distance loosely:
                // use the maximum latency among edges from->to (conservative).
                let lat = ddg
                    .out_edges(from)
                    .filter(|e| e.to() == to)
                    .map(|e| edge_latency(machine, ddg, e))
                    .max()
                    .unwrap_or(0);
                latency += lat;
            }
            let distance = c.total_distance();
            let bound = if distance == 0 {
                u32::MAX // malformed; validation forbids this
            } else {
                let lat = latency.max(1);
                let d = i64::from(distance);
                u32::try_from((lat + d - 1) / d).unwrap_or(u32::MAX)
            };
            RecurrenceBound { ops, latency, distance, bound }
        })
        .collect();
    out.sort_by(|a, b| b.bound.cmp(&a.bound).then(a.ops.len().cmp(&b.ops.len())));
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use regpipe_ddg::{DdgBuilder, OpKind};

    #[test]
    fn acyclic_graph_has_recmii_one() {
        let mut b = DdgBuilder::new("dag");
        let x = b.add_op(OpKind::Load, "x");
        let y = b.add_op(OpKind::Add, "y");
        b.reg(x, y);
        let g = b.build().unwrap();
        assert_eq!(rec_mii(&g, &MachineConfig::p1l4()), 1);
    }

    #[test]
    fn self_recurrence_bound() {
        // acc = acc + x, distance 1: RecMII = latency(add) = 4.
        let mut b = DdgBuilder::new("acc");
        let a = b.add_op(OpKind::Add, "a");
        b.reg_dist(a, a, 1);
        let g = b.build().unwrap();
        assert_eq!(rec_mii(&g, &MachineConfig::p1l4()), 4);
        assert_eq!(rec_mii(&g, &MachineConfig::p2l6()), 6);
    }

    #[test]
    fn distance_divides_the_bound() {
        // Same recurrence but distance 4: ceil(4/4) = 1... with two ops.
        let mut b = DdgBuilder::new("d4");
        let a = b.add_op(OpKind::Add, "a");
        let c = b.add_op(OpKind::Mul, "c");
        b.reg(a, c);
        b.reg_dist(c, a, 4);
        let g = b.build().unwrap();
        // Cycle latency 4 + 4 = 8 over distance 4 -> ceil(8/4) = 2.
        assert_eq!(rec_mii(&g, &MachineConfig::p1l4()), 2);
    }

    #[test]
    fn max_over_multiple_recurrences() {
        let mut b = DdgBuilder::new("two");
        let a = b.add_op(OpKind::Add, "a");
        b.reg_dist(a, a, 1); // bound 4
        let d = b.add_op(OpKind::Div, "d");
        b.reg_dist(d, d, 2); // bound ceil(17/2) = 9
        let g = b.build().unwrap();
        assert_eq!(rec_mii(&g, &MachineConfig::p1l4()), 9);
    }

    #[test]
    fn order_edges_contribute_zero_latency() {
        let mut b = DdgBuilder::new("ord");
        let a = b.add_op(OpKind::Add, "a");
        let c = b.add_op(OpKind::Add, "c");
        b.reg(a, c); // latency 4
        b.order(c, a, 1); // latency 0
        let g = b.build().unwrap();
        // Cycle latency 4 + 0 = 4, distance 1.
        assert_eq!(rec_mii(&g, &MachineConfig::p1l4()), 4);
    }

    #[test]
    fn per_recurrence_bounds_match_recmii() {
        let mut b = DdgBuilder::new("two");
        let a = b.add_op(OpKind::Add, "a");
        b.reg_dist(a, a, 1);
        let d = b.add_op(OpKind::Div, "d");
        b.reg_dist(d, d, 2);
        let g = b.build().unwrap();
        let m = MachineConfig::p1l4();
        let bounds = per_recurrence_bounds(&g, &m, 1000).unwrap();
        assert_eq!(bounds.len(), 2);
        assert_eq!(bounds[0].bound, rec_mii(&g, &m));
        assert_eq!(bounds[0].bound, 9);
        assert_eq!(bounds[1].bound, 4);
    }

    #[test]
    fn recmii_agrees_with_circuit_enumeration_on_random_graphs() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let m = MachineConfig::p2l4();
        for case in 0..40 {
            let n = rng.random_range(2..10usize);
            let mut b = DdgBuilder::new(format!("r{case}"));
            let ops: Vec<_> = (0..n)
                .map(|i| {
                    let kind = match rng.random_range(0..4u32) {
                        0 => OpKind::Load,
                        1 => OpKind::Add,
                        2 => OpKind::Mul,
                        _ => OpKind::Copy,
                    };
                    b.add_op(kind, format!("n{i}"))
                })
                .collect();
            for _ in 0..rng.random_range(1..3 * n) {
                let f = ops[rng.random_range(0..n)];
                let t = ops[rng.random_range(0..n)];
                // Keep zero-distance edges forward to avoid 0-cycles.
                if t > f {
                    let d = rng.random_range(0..3u32);
                    b.reg_dist(f, t, d);
                } else {
                    b.reg_dist(f, t, rng.random_range(1..4u32));
                }
            }
            let Ok(g) = b.build() else { continue };
            let fast = rec_mii(&g, &m);
            if let Some(bounds) = per_recurrence_bounds(&g, &m, 100_000) {
                let exact = bounds.first().map_or(1, |b| b.bound).max(1);
                assert_eq!(fast, exact, "case {case}:\n{g}");
            }
        }
    }
}
