//! Recurrence-constrained minimum initiation interval.

use regpipe_ddg::algo::{elementary_circuits, recurrences};
use regpipe_ddg::{Ddg, OpId};
use regpipe_machine::MachineConfig;

use crate::edge_latency;

const NEG_INF: i64 = i64::MIN / 4;

/// Computes `RecMII`: the smallest II such that no dependence cycle is
/// over-constrained, i.e. for every cycle `C`, `Lat(C) ≤ II · Dist(C)`
/// (paper Section 2.2). Returns 1 for acyclic graphs.
///
/// Implemented as a binary search over II with positive-cycle detection on
/// edge weights `lat(e) − II·δ(e)` (Floyd–Warshall longest paths), which is
/// exact and avoids enumerating the possibly-exponential set of circuits.
pub fn rec_mii(ddg: &Ddg, machine: &MachineConfig) -> u32 {
    if recurrences(ddg).is_empty() {
        return 1;
    }
    // Upper bound: any circuit's latency is at most the sum of all edge
    // latencies, and its distance is at least 1.
    let hi_bound: i64 =
        ddg.edges().map(|e| edge_latency(machine, ddg, e).max(0)).sum::<i64>().max(1);
    let mut lo = 1u32;
    let mut hi = u32::try_from(hi_bound).unwrap_or(u32::MAX);
    // Invariant: feasible(hi) is true, feasible(lo - 1)... lo may be feasible.
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if has_positive_cycle(ddg, machine, mid) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Whether the graph has a cycle with positive total weight under
/// `w(e) = lat(e) − II·δ(e)`.
fn has_positive_cycle(ddg: &Ddg, machine: &MachineConfig, ii: u32) -> bool {
    let n = ddg.num_ops();
    let mut dist = vec![NEG_INF; n * n];
    for e in ddg.edges() {
        let w = edge_latency(machine, ddg, e) - i64::from(ii) * i64::from(e.distance());
        let idx = e.from().index() * n + e.to().index();
        if w > dist[idx] {
            dist[idx] = w;
        }
    }
    // Floyd–Warshall longest paths with early positive-diagonal exit.
    for k in 0..n {
        for i in 0..n {
            let dik = dist[i * n + k];
            if dik == NEG_INF {
                continue;
            }
            for j in 0..n {
                let dkj = dist[k * n + j];
                if dkj == NEG_INF {
                    continue;
                }
                let cand = dik + dkj;
                if cand > dist[i * n + j] {
                    dist[i * n + j] = cand;
                }
            }
            if dist[i * n + i] > 0 {
                return true;
            }
        }
    }
    (0..n).any(|i| dist[i * n + i] > 0)
}

/// The II bound contributed by one recurrence.
#[derive(Clone, PartialEq, Debug)]
pub struct RecurrenceBound {
    /// The operations of the critical circuit.
    pub ops: Vec<OpId>,
    /// Total latency around the circuit.
    pub latency: i64,
    /// Total dependence distance around the circuit.
    pub distance: u32,
    /// The bound `⌈latency / distance⌉`.
    pub bound: u32,
}

/// Exact per-recurrence diagnostics: for every elementary circuit, its
/// `⌈Lat/Dist⌉` bound, sorted descending by bound.
///
/// Enumerates circuits with Johnson's algorithm (capped at `cap`); returns
/// `None` when the graph has too many circuits, in which case callers should
/// fall back to the scalar [`rec_mii`].
pub fn per_recurrence_bounds(
    ddg: &Ddg,
    machine: &MachineConfig,
    cap: usize,
) -> Option<Vec<RecurrenceBound>> {
    let circuits = elementary_circuits(ddg, cap)?;
    let mut out: Vec<RecurrenceBound> = circuits
        .into_iter()
        .map(|c| {
            // Latency around the circuit: sum of per-hop edge latencies.
            // Re-derive hop latencies from node kinds (an Order edge would
            // have latency zero, but circuits through Order edges still
            // constrain ordering): use the minimal-latency interpretation
            // consistent with `rec_mii` by checking actual edges.
            let ops = c.ops().to_vec();
            let k = ops.len();
            let mut latency = 0i64;
            for i in 0..k {
                let from = ops[i];
                let to = ops[(i + 1) % k];
                // Minimal-distance parallel edge was already selected by the
                // circuit enumerator; charge the max-latency edge kind
                // between the pair that matches the chosen distance loosely:
                // use the maximum latency among edges from->to (conservative).
                let lat = ddg
                    .out_edges(from)
                    .filter(|e| e.to() == to)
                    .map(|e| edge_latency(machine, ddg, e))
                    .max()
                    .unwrap_or(0);
                latency += lat;
            }
            let distance = c.total_distance();
            let bound = if distance == 0 {
                u32::MAX // malformed; validation forbids this
            } else {
                let lat = latency.max(1);
                let d = i64::from(distance);
                u32::try_from((lat + d - 1) / d).unwrap_or(u32::MAX)
            };
            RecurrenceBound { ops, latency, distance, bound }
        })
        .collect();
    out.sort_by(|a, b| b.bound.cmp(&a.bound).then(a.ops.len().cmp(&b.ops.len())));
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use regpipe_ddg::{DdgBuilder, OpKind};

    #[test]
    fn acyclic_graph_has_recmii_one() {
        let mut b = DdgBuilder::new("dag");
        let x = b.add_op(OpKind::Load, "x");
        let y = b.add_op(OpKind::Add, "y");
        b.reg(x, y);
        let g = b.build().unwrap();
        assert_eq!(rec_mii(&g, &MachineConfig::p1l4()), 1);
    }

    #[test]
    fn self_recurrence_bound() {
        // acc = acc + x, distance 1: RecMII = latency(add) = 4.
        let mut b = DdgBuilder::new("acc");
        let a = b.add_op(OpKind::Add, "a");
        b.reg_dist(a, a, 1);
        let g = b.build().unwrap();
        assert_eq!(rec_mii(&g, &MachineConfig::p1l4()), 4);
        assert_eq!(rec_mii(&g, &MachineConfig::p2l6()), 6);
    }

    #[test]
    fn distance_divides_the_bound() {
        // Same recurrence but distance 4: ceil(4/4) = 1... with two ops.
        let mut b = DdgBuilder::new("d4");
        let a = b.add_op(OpKind::Add, "a");
        let c = b.add_op(OpKind::Mul, "c");
        b.reg(a, c);
        b.reg_dist(c, a, 4);
        let g = b.build().unwrap();
        // Cycle latency 4 + 4 = 8 over distance 4 -> ceil(8/4) = 2.
        assert_eq!(rec_mii(&g, &MachineConfig::p1l4()), 2);
    }

    #[test]
    fn max_over_multiple_recurrences() {
        let mut b = DdgBuilder::new("two");
        let a = b.add_op(OpKind::Add, "a");
        b.reg_dist(a, a, 1); // bound 4
        let d = b.add_op(OpKind::Div, "d");
        b.reg_dist(d, d, 2); // bound ceil(17/2) = 9
        let g = b.build().unwrap();
        assert_eq!(rec_mii(&g, &MachineConfig::p1l4()), 9);
    }

    #[test]
    fn order_edges_contribute_zero_latency() {
        let mut b = DdgBuilder::new("ord");
        let a = b.add_op(OpKind::Add, "a");
        let c = b.add_op(OpKind::Add, "c");
        b.reg(a, c); // latency 4
        b.order(c, a, 1); // latency 0
        let g = b.build().unwrap();
        // Cycle latency 4 + 0 = 4, distance 1.
        assert_eq!(rec_mii(&g, &MachineConfig::p1l4()), 4);
    }

    #[test]
    fn per_recurrence_bounds_match_recmii() {
        let mut b = DdgBuilder::new("two");
        let a = b.add_op(OpKind::Add, "a");
        b.reg_dist(a, a, 1);
        let d = b.add_op(OpKind::Div, "d");
        b.reg_dist(d, d, 2);
        let g = b.build().unwrap();
        let m = MachineConfig::p1l4();
        let bounds = per_recurrence_bounds(&g, &m, 1000).unwrap();
        assert_eq!(bounds.len(), 2);
        assert_eq!(bounds[0].bound, rec_mii(&g, &m));
        assert_eq!(bounds[0].bound, 9);
        assert_eq!(bounds[1].bound, 4);
    }

    #[test]
    fn recmii_agrees_with_circuit_enumeration_on_random_graphs() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let m = MachineConfig::p2l4();
        for case in 0..40 {
            let n = rng.random_range(2..10usize);
            let mut b = DdgBuilder::new(format!("r{case}"));
            let ops: Vec<_> = (0..n)
                .map(|i| {
                    let kind = match rng.random_range(0..4u32) {
                        0 => OpKind::Load,
                        1 => OpKind::Add,
                        2 => OpKind::Mul,
                        _ => OpKind::Copy,
                    };
                    b.add_op(kind, format!("n{i}"))
                })
                .collect();
            for _ in 0..rng.random_range(1..3 * n) {
                let f = ops[rng.random_range(0..n)];
                let t = ops[rng.random_range(0..n)];
                // Keep zero-distance edges forward to avoid 0-cycles.
                if t > f {
                    let d = rng.random_range(0..3u32);
                    b.reg_dist(f, t, d);
                } else {
                    b.reg_dist(f, t, rng.random_range(1..4u32));
                }
            }
            let Ok(g) = b.build() else { continue };
            let fast = rec_mii(&g, &m);
            if let Some(bounds) = per_recurrence_bounds(&g, &m, 100_000) {
                let exact = bounds.first().map_or(1, |b| b.bound).max(1);
                assert_eq!(fast, exact, "case {case}:\n{g}");
            }
        }
    }
}
