//! The scheduler registry: [`SchedulerKind`] makes *which* modulo scheduler
//! runs a first-class, serializable axis of the evaluation matrix, next to
//! the register-reduction strategy.
//!
//! The enum itself implements [`Scheduler`] by dispatch, so the generic
//! drivers in `regpipe-core` (`SpillDriver::with_scheduler` and friends)
//! accept it directly — no boxing, `Copy` options structs keep working, and
//! a `SchedulerKind` travels through `CompileOptions`, `BatchRequest` and
//! the `BENCH_*.json` reports as a plain slug (`hrms`, `sms`, `asap`).

use std::fmt;

use regpipe_ddg::Ddg;
use regpipe_machine::MachineConfig;

use crate::{
    AsapScheduler, ExactScheduler, HrmsScheduler, LoopAnalysis, SchedError, SchedRequest,
    Schedule, Scheduler, SmsScheduler,
};

/// Which modulo scheduler to run — the scheduler axis of the evaluation
/// matrix (`--scheduler` on the CLI).
///
/// All three share the per-loop [`LoopAnalysis`] context and the
/// warm-started timing analysis; they differ in how the ordering phase
/// arranges operations and hence in how register-sensitive the resulting
/// schedules are. `docs/algorithms.md` walks the orderings side by side.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum SchedulerKind {
    /// Hypernode Reduction Modulo Scheduling: the paper's core
    /// register-sensitive scheduler ([`HrmsScheduler`]).
    #[default]
    Hrms,
    /// Swing Modulo Scheduling: the successor heuristic ordering by
    /// combined ASAP/ALAP swing priority ([`SmsScheduler`]).
    Sms,
    /// The register-insensitive top-down baseline ([`AsapScheduler`]).
    Asap,
    /// The branch-and-bound optimality oracle ([`ExactScheduler`]) with
    /// its default node budget — II-optimal whenever the search proves
    /// it, best-effort (HRMS incumbent) when the budget runs out. The
    /// budget is fixed here so the slug alone still identifies the
    /// result (serve cache keys and reports carry only the slug).
    Exact,
}

impl SchedulerKind {
    /// Every registered scheduler, in canonical (CLI help) order.
    pub const ALL: [SchedulerKind; 4] =
        [SchedulerKind::Hrms, SchedulerKind::Sms, SchedulerKind::Asap, SchedulerKind::Exact];

    /// The canonical CLI/report spelling.
    pub fn slug(self) -> &'static str {
        match self {
            SchedulerKind::Hrms => "hrms",
            SchedulerKind::Sms => "sms",
            SchedulerKind::Asap => "asap",
            SchedulerKind::Exact => "exact",
        }
    }

    /// Parses a CLI spelling (the inverse of [`SchedulerKind::slug`]).
    ///
    /// # Errors
    ///
    /// Names the unknown value and lists the registered schedulers.
    pub fn parse(raw: &str) -> Result<Self, String> {
        match raw {
            "hrms" => Ok(SchedulerKind::Hrms),
            "sms" => Ok(SchedulerKind::Sms),
            "asap" => Ok(SchedulerKind::Asap),
            "exact" => Ok(SchedulerKind::Exact),
            other => {
                Err(format!("unknown scheduler '{other}' (expected hrms, sms, asap or exact)"))
            }
        }
    }
}

impl fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.slug())
    }
}

impl Scheduler for SchedulerKind {
    fn name(&self) -> &'static str {
        self.slug()
    }

    fn schedule(
        &self,
        ddg: &Ddg,
        machine: &MachineConfig,
        request: &SchedRequest,
    ) -> Result<Schedule, SchedError> {
        crate::deadline::check();
        match self {
            SchedulerKind::Hrms => HrmsScheduler::new().schedule(ddg, machine, request),
            SchedulerKind::Sms => SmsScheduler::new().schedule(ddg, machine, request),
            SchedulerKind::Asap => AsapScheduler::new().schedule(ddg, machine, request),
            SchedulerKind::Exact => ExactScheduler::new().schedule(ddg, machine, request),
        }
    }

    fn schedule_in(
        &self,
        ctx: &LoopAnalysis<'_>,
        request: &SchedRequest,
    ) -> Result<Schedule, SchedError> {
        // Every driver round and II probe funnels through this dispatch,
        // so one cooperative deadline check-point here bounds them all.
        crate::deadline::check();
        match self {
            SchedulerKind::Hrms => HrmsScheduler::new().schedule_in(ctx, request),
            SchedulerKind::Sms => SmsScheduler::new().schedule_in(ctx, request),
            SchedulerKind::Asap => AsapScheduler::new().schedule_in(ctx, request),
            SchedulerKind::Exact => ExactScheduler::new().schedule_in(ctx, request),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regpipe_ddg::{DdgBuilder, OpKind};

    #[test]
    fn slugs_roundtrip_and_unknowns_are_named() {
        for kind in SchedulerKind::ALL {
            assert_eq!(SchedulerKind::parse(kind.slug()).unwrap(), kind);
            assert_eq!(kind.to_string(), kind.slug());
        }
        let err = SchedulerKind::parse("warp").unwrap_err();
        assert!(err.contains("unknown scheduler 'warp'"), "{err}");
        assert!(err.contains("hrms"), "lists the registry: {err}");
    }

    #[test]
    fn dispatch_matches_the_concrete_schedulers() {
        let mut b = DdgBuilder::new("d");
        let l = b.add_op(OpKind::Load, "l");
        let a = b.add_op(OpKind::Add, "a");
        let s = b.add_op(OpKind::Store, "s");
        b.reg(l, a);
        b.reg(a, s);
        b.reg_dist(a, a, 1);
        let g = b.build().unwrap();
        let m = MachineConfig::p2l4();
        let req = SchedRequest::default();
        for kind in SchedulerKind::ALL {
            let via_kind = kind.schedule(&g, &m, &req).unwrap();
            assert_eq!(via_kind.scheduler(), kind.slug());
            let direct = match kind {
                SchedulerKind::Hrms => HrmsScheduler::new().schedule(&g, &m, &req).unwrap(),
                SchedulerKind::Sms => SmsScheduler::new().schedule(&g, &m, &req).unwrap(),
                SchedulerKind::Asap => AsapScheduler::new().schedule(&g, &m, &req).unwrap(),
                SchedulerKind::Exact => ExactScheduler::new().schedule(&g, &m, &req).unwrap(),
            };
            assert_eq!(via_kind, direct, "{kind} dispatch must be transparent");
            let via_ctx = kind.schedule_in(&LoopAnalysis::new(&g, &m), &req).unwrap();
            assert_eq!(via_ctx, direct, "{kind} context dispatch must be transparent");
        }
    }

    #[test]
    fn default_is_the_paper_scheduler() {
        assert_eq!(SchedulerKind::default(), SchedulerKind::Hrms);
    }
}
