//! The per-loop analysis context: everything a modulo scheduler derives
//! from a `(Ddg, MachineConfig)` pair that does *not* depend on the
//! candidate II, computed once and shared across the whole II search — and,
//! through the drivers in `regpipe-core`, across entire compile runs.
//!
//! Before this layer existed every II probe rebuilt the complex-operation
//! groups, the group-level super graph, its SCCs, the per-recurrence RecMII
//! bounds (each a Floyd–Warshall binary search!), the reachability queries
//! of the ordering phase and the fallback topological order from scratch.
//! All of that is II-independent. [`LoopAnalysis`] hoists it out of the
//! loop; what remains per II is one (warm-started) timing analysis, the
//! alternating-direction inner ordering and the placement scan.
//!
//! # Invalidation
//!
//! A context is a pure function of the graph and machine it was built from
//! and holds borrows of both, so it can never outlive them. The compile
//! drivers must rebuild the context whenever the graph is *rewritten* —
//! spill-code insertion (`regpipe_spill::spill` /
//! `regpipe_spill::spill_batch`) is the only mutation point in the
//! pipeline. [`LoopAnalysis::matches`] is a cheap guard for debug
//! assertions at those boundaries.

use regpipe_ddg::algo::BitClosure;
use regpipe_ddg::{Ddg, OpId};
use regpipe_machine::{res_mii, MachineConfig};

use crate::analysis::TimeAnalysis;
use crate::groups::ComplexGroups;
use crate::recmii::{rec_mii_over, subset_rec_bound};
use crate::{edge_latency, fallback_max_ii};

/// One dependence edge with its timing resolved against the machine model:
/// the Bellman–Ford relaxations and RecMII probes iterate edges many times,
/// so latencies are looked up once instead of per visit.
#[derive(Clone, Copy, Debug)]
pub(crate) struct TimedEdge {
    /// Producer op index.
    pub from: usize,
    /// Consumer op index.
    pub to: usize,
    /// Latency charged on the edge.
    pub lat: i64,
    /// Dependence distance δ.
    pub dist: i64,
}

/// A cross-group dependence as seen from one member operation, used by the
/// placement phase to fold scheduled neighbours into an early/late window.
#[derive(Clone, Copy, Debug)]
pub(crate) struct CrossEdge {
    /// The op on the other end (producer for in-edges, consumer for out).
    pub other: usize,
    /// Latency charged on the edge.
    pub lat: i64,
    /// Dependence distance δ.
    pub dist: i64,
}

/// All edges of `ddg` with pre-resolved timing, in `ddg.edges()` order.
pub(crate) fn timed_edges(ddg: &Ddg, machine: &MachineConfig) -> Vec<TimedEdge> {
    ddg.edges()
        .map(|e| TimedEdge {
            from: e.from().index(),
            to: e.to().index(),
            lat: edge_latency(machine, ddg, e),
            dist: i64::from(e.distance()),
        })
        .collect()
}

/// Machine latency per operation, indexed by op.
pub(crate) fn op_latencies(ddg: &Ddg, machine: &MachineConfig) -> Vec<i64> {
    (0..ddg.num_ops())
        .map(|v| i64::from(machine.latency(ddg.op(OpId::new(v)).kind())))
        .collect()
}

/// The group-level super graph: adjacency between complex-group indices.
pub(crate) struct SuperGraph {
    /// Distinct successor groups per group.
    pub succs: Vec<Vec<usize>>,
    /// Distinct predecessor groups per group.
    pub preds: Vec<Vec<usize>>,
    /// Groups closed into a recurrence by a loop-carried edge internal to
    /// the group (e.g. an accumulator's self-edge). Tracked separately:
    /// `succs`/`preds` drop intra-group edges, so a one-group recurrence is
    /// invisible to the SCC pass.
    pub self_cyclic: Vec<bool>,
}

impl SuperGraph {
    fn new(ddg: &Ddg, groups: &ComplexGroups) -> Self {
        let g = groups.len();
        let mut succs = vec![Vec::new(); g];
        let mut preds = vec![Vec::new(); g];
        let mut self_cyclic = vec![false; g];
        for e in ddg.edges() {
            let gf = groups.group_of(e.from());
            let gt = groups.group_of(e.to());
            if gf != gt {
                if !succs[gf].contains(&gt) {
                    succs[gf].push(gt);
                }
                if !preds[gt].contains(&gf) {
                    preds[gt].push(gf);
                }
            } else if e.distance() > 0 {
                // Distance-0 intra-group edges (bonds and the free edges
                // between bonded members) are acyclic by validation; only a
                // carried edge closes a recurrence through the group.
                self_cyclic[gf] = true;
            }
        }
        SuperGraph { succs, preds, self_cyclic }
    }
}

/// An intra-group free edge's fixed separation vs. its timing requirement:
/// at II the group is placeable only if `sep ≥ lat − II·δ`.
#[derive(Clone, Copy, Debug)]
pub(crate) struct IntraFreeEdge {
    /// Bond-offset separation `offset(to) − offset(from)`.
    pub sep: i64,
    /// Latency charged on the edge.
    pub lat: i64,
    /// Dependence distance δ.
    pub dist: i64,
}

/// Everything the schedulers derive from a `(Ddg, MachineConfig)` pair
/// independently of the candidate II: complex-operation groups, pre-timed
/// edges, the group super graph and its SCC-derived priority sets (with
/// word-packed reachability), the fallback topological order, and the
/// `ResMII`/`RecMII`/`MII` bounds. Built once per graph and shared across
/// every II probe of a schedule call — and, through
/// [`Scheduler::schedule_in`](crate::Scheduler::schedule_in), across
/// repeated schedule calls on the same loop.
///
/// # Invalidation
///
/// The context borrows its graph and machine and is a pure function of
/// them; it must be rebuilt whenever the graph is rewritten (spill-code
/// insertion is the pipeline's only mutation point). [`LoopAnalysis::matches`]
/// is a cheap debug guard for that contract.
pub struct LoopAnalysis<'a> {
    ddg: &'a Ddg,
    machine: &'a MachineConfig,
    groups: ComplexGroups,
    latency: Vec<i64>,
    /// All edges with pre-resolved timing (the exact scheduler folds
    /// these into its group-level difference constraints per II).
    pub(crate) edges: Vec<TimedEdge>,
    /// Cross-group in-edges per op, in `ddg.in_edges` order.
    pub(crate) in_cross: Vec<Vec<CrossEdge>>,
    /// Cross-group out-edges per op, in `ddg.out_edges` order.
    pub(crate) out_cross: Vec<Vec<CrossEdge>>,
    /// Intra-group free edges (placement pre-check).
    pub(crate) intra_free: Vec<IntraFreeEdge>,
    pub(crate) sg: SuperGraph,
    /// The HRMS priority sets: recurrences by decreasing RecMII bound, each
    /// augmented with the groups on connecting paths, then the acyclic rest.
    pub(crate) sets: Vec<Vec<usize>>,
    /// Forward topological leader order (the ASAP/fallback placement order).
    pub(crate) fallback: Vec<OpId>,
    res_mii: u32,
    rec_mii: u32,
    fallback_max_ii: u32,
}

impl<'a> LoopAnalysis<'a> {
    /// Builds the context for `ddg` on `machine`.
    pub fn new(ddg: &'a Ddg, machine: &'a MachineConfig) -> Self {
        let groups = ComplexGroups::new(ddg, machine);
        let latency = op_latencies(ddg, machine);
        let edges = timed_edges(ddg, machine);
        let n = ddg.num_ops();

        let mut in_cross = vec![Vec::new(); n];
        let mut out_cross = vec![Vec::new(); n];
        let mut intra_free = Vec::new();
        for v in 0..n {
            let m = OpId::new(v);
            for e in ddg.in_edges(m) {
                if groups.group_of(e.from()) != groups.group_of(m) {
                    in_cross[v].push(CrossEdge {
                        other: e.from().index(),
                        lat: edge_latency(machine, ddg, e),
                        dist: i64::from(e.distance()),
                    });
                }
            }
            for e in ddg.out_edges(m) {
                if groups.group_of(e.to()) != groups.group_of(m) {
                    out_cross[v].push(CrossEdge {
                        other: e.to().index(),
                        lat: edge_latency(machine, ddg, e),
                        dist: i64::from(e.distance()),
                    });
                }
            }
        }
        for e in ddg.edges() {
            if !e.is_fixed() && groups.group_of(e.from()) == groups.group_of(e.to()) {
                intra_free.push(IntraFreeEdge {
                    sep: groups.offset(e.to()) - groups.offset(e.from()),
                    lat: edge_latency(machine, ddg, e),
                    dist: i64::from(e.distance()),
                });
            }
        }

        let sg = SuperGraph::new(ddg, &groups);
        let sets = priority_sets(ddg, machine, &groups, &sg);
        let fallback = crate::hrms::topo_leader_order(ddg, &groups);

        let has_recurrence = !regpipe_ddg::algo::recurrences(ddg).is_empty();
        let rec_mii = rec_mii_over(n, &edges, has_recurrence);
        LoopAnalysis {
            res_mii: res_mii(machine, ddg),
            rec_mii,
            fallback_max_ii: fallback_max_ii(ddg, machine),
            ddg,
            machine,
            groups,
            latency,
            edges,
            in_cross,
            out_cross,
            intra_free,
            sg,
            sets,
            fallback,
        }
    }

    /// The graph this context was built from.
    pub fn ddg(&self) -> &'a Ddg {
        self.ddg
    }

    /// The machine this context was built for.
    pub fn machine(&self) -> &'a MachineConfig {
        self.machine
    }

    /// The complex-operation groups.
    pub fn groups(&self) -> &ComplexGroups {
        &self.groups
    }

    /// The resource-constrained II lower bound.
    pub fn res_mii(&self) -> u32 {
        self.res_mii
    }

    /// The recurrence-constrained II lower bound.
    pub fn rec_mii(&self) -> u32 {
        self.rec_mii
    }

    /// The minimum initiation interval `max(ResMII, RecMII)`.
    pub fn mii(&self) -> u32 {
        self.res_mii.max(self.rec_mii)
    }

    /// The defensive upper bound on the II search
    /// ([`fallback_max_ii`](crate::fallback_max_ii)).
    pub fn fallback_max_ii(&self) -> u32 {
        self.fallback_max_ii
    }

    /// Whether this context still describes `ddg`.
    ///
    /// Cheap (pointer + shape) guard for the invalidation contract: any
    /// graph rewrite — in this pipeline, spill-code insertion — requires a
    /// fresh context. Intended for `debug_assert!` at driver boundaries.
    pub fn matches(&self, ddg: &Ddg) -> bool {
        std::ptr::eq(self.ddg, ddg)
            || (self.ddg.num_ops() == ddg.num_ops() && self.ddg.num_edges() == ddg.num_edges())
    }

    /// Timing analysis at `ii`, warm-started from `prev` (the solution at a
    /// smaller II of this same graph) when given.
    ///
    /// Returns `None` exactly when `ii < RecMII` — the same condition under
    /// which [`TimeAnalysis::new`] detects divergence, decided here against
    /// the cached bound without running the fixpoint at all.
    pub fn time_analysis(&self, ii: u32, prev: Option<&TimeAnalysis>) -> Option<TimeAnalysis> {
        if ii < self.rec_mii {
            return None;
        }
        let analysis =
            TimeAnalysis::compute(self.ddg.num_ops(), &self.edges, &self.latency, ii, prev);
        debug_assert!(analysis.is_some(), "analysis diverged at ii {ii} >= RecMII");
        analysis
    }
}

/// The II-independent half of the HRMS ordering phase: recurrence sets by
/// decreasing RecMII bound, each augmented with the groups on paths
/// connecting it to previously chosen sets, and a final set with the
/// acyclic rest.
///
/// Reachability runs on a word-packed transitive closure of the super graph
/// ([`BitClosure`]) instead of one BFS per query; chosen/recurrence rows are
/// unioned with bitwise ORs.
fn priority_sets(
    ddg: &Ddg,
    machine: &MachineConfig,
    groups: &ComplexGroups,
    sg: &SuperGraph,
) -> Vec<Vec<usize>> {
    let g = groups.len();
    let sccs = regpipe_ddg::algo::sccs_of(&sg.succs);
    let mut rec_sets: Vec<(u32, Vec<usize>)> = Vec::new();
    for comp in &sccs {
        let cyclic = comp.len() > 1 || sg.self_cyclic[comp[0]];
        if cyclic {
            let members: Vec<OpId> = comp
                .iter()
                .flat_map(|&gi| groups.members_of(groups.leader(gi)).iter().copied())
                .collect();
            let bound = subset_rec_bound(ddg, machine, &members);
            rec_sets.push((bound, comp.clone()));
        }
    }
    rec_sets.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));

    let (fwd, bwd) = if rec_sets.len() > 1 {
        (BitClosure::new(&sg.succs), BitClosure::transposed(&sg.succs))
    } else {
        // With at most one recurrence set there are no path nodes to find.
        (BitClosure::new(&[]), BitClosure::new(&[]))
    };
    let words = fwd.words();
    // Union of closure rows over all chosen groups, forward and backward.
    let mut fwd_chosen = vec![0u64; words];
    let mut bwd_chosen = vec![0u64; words];
    let mut comp_fwd = vec![0u64; words];
    let mut comp_bwd = vec![0u64; words];
    let bit = |row: &[u64], v: usize| row[v / 64] >> (v % 64) & 1 == 1;

    let mut chosen = vec![false; g];
    let mut sets: Vec<Vec<usize>> = Vec::new();
    let mut any_chosen = false;
    for (_, comp) in &rec_sets {
        let mut set: Vec<usize> = comp.iter().copied().filter(|&x| !chosen[x]).collect();
        if any_chosen && !set.is_empty() {
            // Path nodes between previously chosen sets and this recurrence:
            // forward-reachable from a chosen group AND backward-reachable
            // from the recurrence, or vice versa.
            comp_fwd.fill(0);
            comp_bwd.fill(0);
            for &v in comp.iter() {
                for w in 0..words {
                    comp_fwd[w] |= fwd.row(v)[w];
                    comp_bwd[w] |= bwd.row(v)[w];
                }
            }
            for (v, &taken) in chosen.iter().enumerate() {
                if taken || set.contains(&v) {
                    continue;
                }
                let on_path = (bit(&fwd_chosen, v) && bit(&comp_bwd, v))
                    || (bit(&comp_fwd, v) && bit(&bwd_chosen, v));
                if on_path {
                    set.push(v);
                }
            }
        }
        if !set.is_empty() {
            for &v in &set {
                chosen[v] = true;
                if words > 0 {
                    for w in 0..words {
                        fwd_chosen[w] |= fwd.row(v)[w];
                        bwd_chosen[w] |= bwd.row(v)[w];
                    }
                }
            }
            any_chosen = true;
            sets.push(set);
        }
    }
    let rest: Vec<usize> = (0..g).filter(|&v| !chosen[v]).collect();
    if !rest.is_empty() {
        sets.push(rest);
    }
    sets
}

#[cfg(test)]
mod tests {
    use super::*;
    use regpipe_ddg::{DdgBuilder, OpKind};

    #[test]
    fn context_caches_the_standalone_bounds() {
        let mut b = DdgBuilder::new("ctx");
        let ld = b.add_op(OpKind::Load, "ld");
        let add = b.add_op(OpKind::Add, "+");
        let st = b.add_op(OpKind::Store, "st");
        b.reg(ld, add);
        b.reg(add, st);
        b.reg_dist(add, add, 1);
        let g = b.build().unwrap();
        let m = MachineConfig::p2l4();
        let ctx = LoopAnalysis::new(&g, &m);
        assert_eq!(ctx.mii(), crate::mii(&g, &m));
        assert_eq!(ctx.rec_mii(), crate::rec_mii(&g, &m));
        assert_eq!(ctx.res_mii(), res_mii(&m, &g));
        assert_eq!(ctx.fallback_max_ii(), fallback_max_ii(&g, &m));
        assert!(ctx.matches(&g));
    }

    #[test]
    fn time_analysis_agrees_with_direct_construction() {
        let mut b = DdgBuilder::new("ta");
        let a = b.add_op(OpKind::Add, "a");
        let c = b.add_op(OpKind::Mul, "c");
        b.reg(a, c);
        b.reg_dist(c, a, 1);
        let g = b.build().unwrap();
        let m = MachineConfig::p2l4();
        let ctx = LoopAnalysis::new(&g, &m);
        assert!(ctx.time_analysis(ctx.rec_mii() - 1, None).is_none());
        let via_ctx = ctx.time_analysis(ctx.rec_mii(), None).unwrap();
        let direct = TimeAnalysis::new(&g, &m, ctx.rec_mii()).unwrap();
        for v in 0..g.num_ops() {
            let op = OpId::new(v);
            assert_eq!(via_ctx.asap(op), direct.asap(op));
            assert_eq!(via_ctx.alap(op), direct.alap(op));
        }
    }

    #[test]
    fn matches_rejects_a_differently_shaped_graph() {
        let mut b = DdgBuilder::new("a");
        b.add_op(OpKind::Add, "x");
        let g = b.build().unwrap();
        let mut b2 = DdgBuilder::new("b");
        b2.add_op(OpKind::Add, "x");
        b2.add_op(OpKind::Add, "y");
        let g2 = b2.build().unwrap();
        let m = MachineConfig::p1l4();
        let ctx = LoopAnalysis::new(&g, &m);
        assert!(!ctx.matches(&g2));
    }
}
