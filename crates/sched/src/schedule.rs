//! Modulo schedules and their verification.

use std::error::Error;
use std::fmt;

use regpipe_ddg::{Ddg, OpId};
use regpipe_machine::{MachineConfig, Mrt};

use crate::edge_latency;

/// A modulo schedule: an initiation interval and a start cycle for every
/// operation of one loop iteration.
///
/// Start cycles are normalized so the earliest operation starts at cycle 0.
/// Repeating the same assignment every II cycles yields the steady state;
/// the number of overlapped iterations is the stage count
/// `SC = ⌊max start / II⌋ + 1` (paper Section 2.2).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Schedule {
    ii: u32,
    start: Vec<i64>,
    scheduler: &'static str,
    iis_tried: u32,
}

impl Schedule {
    /// Wraps raw start cycles into a schedule, normalizing so the earliest
    /// start is zero.
    ///
    /// # Panics
    ///
    /// Panics if `ii == 0` or `start` is empty.
    pub fn new(ii: u32, start: Vec<i64>) -> Self {
        Self::with_provenance(ii, start, "manual", 1)
    }

    /// Like [`Schedule::new`] but recording which scheduler produced it and
    /// how many candidate IIs were tried (for the paper's scheduling-time
    /// accounting, Figure 8c).
    pub fn with_provenance(
        ii: u32,
        mut start: Vec<i64>,
        scheduler: &'static str,
        iis_tried: u32,
    ) -> Self {
        assert!(ii > 0, "initiation interval must be positive");
        assert!(!start.is_empty(), "schedule must cover at least one operation");
        let min = *start.iter().min().expect("non-empty");
        if min != 0 {
            for t in &mut start {
                *t -= min;
            }
        }
        Schedule { ii, start, scheduler, iis_tried }
    }

    /// Builds a schedule from explicit `(op, cycle)` pairs — the golden-test
    /// entry point for replaying the paper's hand schedules.
    ///
    /// # Panics
    ///
    /// Panics if the pairs don't cover exactly the ops `0..n` once each.
    pub fn from_fixed(ii: u32, assignments: &[(OpId, i64)]) -> Self {
        let n = assignments.len();
        let mut start = vec![i64::MIN; n];
        for &(op, t) in assignments {
            assert!(op.index() < n, "assignment out of range");
            assert_eq!(start[op.index()], i64::MIN, "duplicate assignment for {op}");
            start[op.index()] = t;
        }
        assert!(start.iter().all(|&t| t != i64::MIN), "missing assignment");
        Schedule::new(ii, start)
    }

    /// The initiation interval.
    pub fn ii(&self) -> u32 {
        self.ii
    }

    /// Number of scheduled operations.
    pub fn num_ops(&self) -> usize {
        self.start.len()
    }

    /// Start cycle of `op` (≥ 0 after normalization).
    ///
    /// # Panics
    ///
    /// Panics if `op` is out of bounds.
    pub fn start(&self, op: OpId) -> i64 {
        self.start[op.index()]
    }

    /// All start cycles, indexed by operation.
    pub fn starts(&self) -> &[i64] {
        &self.start
    }

    /// The latest start cycle.
    pub fn last_start(&self) -> i64 {
        *self.start.iter().max().expect("non-empty")
    }

    /// Stage count: number of concurrently overlapped iterations.
    pub fn stage_count(&self) -> u32 {
        (self.last_start() / i64::from(self.ii) + 1) as u32
    }

    /// The stage of `op` within the kernel.
    pub fn stage(&self, op: OpId) -> u32 {
        (self.start(op) / i64::from(self.ii)) as u32
    }

    /// Name of the scheduler that produced this schedule.
    pub fn scheduler(&self) -> &'static str {
        self.scheduler
    }

    /// How many candidate IIs the producing scheduler tried (≥ 1).
    pub fn iis_tried(&self) -> u32 {
        self.iis_tried
    }

    /// Checks the schedule against dependences, bonds and resources.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint; see [`VerifyError`].
    pub fn verify(&self, ddg: &Ddg, machine: &MachineConfig) -> Result<(), VerifyError> {
        if ddg.num_ops() != self.start.len() {
            return Err(VerifyError::WrongLength {
                ops: ddg.num_ops(),
                scheduled: self.start.len(),
            });
        }
        let ii = i64::from(self.ii);
        for e in ddg.edges() {
            let tf = self.start(e.from());
            let tt = self.start(e.to());
            let lat = edge_latency(machine, ddg, e);
            let sep = tt - tf;
            let need = lat - ii * i64::from(e.distance());
            if e.is_fixed() {
                let expected = lat + i64::from(e.stagger());
                if sep != expected {
                    return Err(VerifyError::BondViolated {
                        from: e.from(),
                        to: e.to(),
                        expected,
                        actual: sep,
                    });
                }
            } else if sep < need {
                return Err(VerifyError::DependenceViolated {
                    from: e.from(),
                    to: e.to(),
                    required: need,
                    actual: sep,
                });
            }
        }
        let mut mrt = Mrt::new(machine, self.ii);
        for (id, node) in ddg.ops() {
            if !mrt.try_place(node.kind(), self.start(id)) {
                return Err(VerifyError::ResourceOverflow {
                    op: id,
                    cycle: self.start(id).rem_euclid(ii),
                });
            }
        }
        Ok(())
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "schedule(II={}, SC={}, span={}, by {})",
            self.ii,
            self.stage_count(),
            self.last_start(),
            self.scheduler
        )
    }
}

/// A violated schedule constraint.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum VerifyError {
    /// The schedule covers a different number of operations than the graph.
    WrongLength {
        /// Operations in the graph.
        ops: usize,
        /// Operations in the schedule.
        scheduled: usize,
    },
    /// A dependence edge's minimum separation is not met.
    DependenceViolated {
        /// Edge source.
        from: OpId,
        /// Edge target.
        to: OpId,
        /// Required `t(to) − t(from)`.
        required: i64,
        /// Actual separation.
        actual: i64,
    },
    /// A fixed (bonded) edge is not at its exact offset.
    BondViolated {
        /// Edge source.
        from: OpId,
        /// Edge target.
        to: OpId,
        /// Required exact separation.
        expected: i64,
        /// Actual separation.
        actual: i64,
    },
    /// A functional-unit class is over-subscribed at a modulo cycle.
    ResourceOverflow {
        /// The operation that did not fit.
        op: OpId,
        /// The modulo cycle where the class overflows.
        cycle: i64,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::WrongLength { ops, scheduled } => {
                write!(f, "schedule covers {scheduled} ops but graph has {ops}")
            }
            VerifyError::DependenceViolated { from, to, required, actual } => write!(
                f,
                "dependence {from} -> {to} needs separation >= {required}, got {actual}"
            ),
            VerifyError::BondViolated { from, to, expected, actual } => {
                write!(f, "bond {from} -> {to} needs separation == {expected}, got {actual}")
            }
            VerifyError::ResourceOverflow { op, cycle } => {
                write!(f, "resources over-subscribed by {op} at modulo cycle {cycle}")
            }
        }
    }
}

impl Error for VerifyError {}

#[cfg(test)]
mod tests {
    use super::*;
    use regpipe_ddg::{DdgBuilder, OpKind};

    fn chain() -> Ddg {
        let mut b = DdgBuilder::new("c");
        let l = b.add_op(OpKind::Load, "l");
        let m = b.add_op(OpKind::Mul, "m");
        let s = b.add_op(OpKind::Store, "s");
        b.reg(l, m);
        b.reg(m, s);
        b.build().unwrap()
    }

    #[test]
    fn normalization_shifts_to_zero() {
        let s = Schedule::new(2, vec![5, 7, 11]);
        assert_eq!(s.starts(), &[0, 2, 6]);
        assert_eq!(s.last_start(), 6);
        assert_eq!(s.stage_count(), 4);
        assert_eq!(s.stage(OpId::new(2)), 3);
    }

    #[test]
    fn valid_chain_schedule_verifies() {
        let g = chain();
        let m = MachineConfig::p1l4();
        // l@0 (lat 2), m@2 (lat 4), s@7 (6 would share the memory unit's
        // modulo cycle with the load at II = 3).
        let s = Schedule::new(3, vec![0, 2, 7]);
        assert_eq!(s.verify(&g, &m), Ok(()));
    }

    #[test]
    fn dependence_violation_detected() {
        let g = chain();
        let m = MachineConfig::p1l4();
        let s = Schedule::new(3, vec![0, 1, 6]); // mul 1 cycle after load
        assert!(matches!(
            s.verify(&g, &m),
            Err(VerifyError::DependenceViolated { required: 2, actual: 1, .. })
        ));
    }

    #[test]
    fn loop_carried_slack_is_honoured() {
        let mut b = DdgBuilder::new("lc");
        let a = b.add_op(OpKind::Add, "a");
        let c = b.add_op(OpKind::Add, "c");
        b.reg(a, c);
        b.reg_dist(c, a, 1);
        let g = b.build().unwrap();
        let m = MachineConfig::p1l4();
        // II = 8: c@4, a@0; back edge needs t(a) - t(c) >= 4 - 8 = -4. OK.
        assert_eq!(Schedule::new(8, vec![0, 4]).verify(&g, &m), Ok(()));
        // II = 7: back edge needs >= -3 but separation is -4.
        assert!(Schedule::new(7, vec![0, 4]).verify(&g, &m).is_err());
    }

    #[test]
    fn resource_overflow_detected() {
        let mut b = DdgBuilder::new("mem");
        b.add_op(OpKind::Load, "l1");
        b.add_op(OpKind::Load, "l2");
        let g = b.build().unwrap();
        let m = MachineConfig::p1l4();
        let bad = Schedule::new(2, vec![0, 2]); // both at modulo cycle 0
        assert!(matches!(bad.verify(&g, &m), Err(VerifyError::ResourceOverflow { .. })));
        let good = Schedule::new(2, vec![0, 1]);
        assert_eq!(good.verify(&g, &m), Ok(()));
    }

    #[test]
    fn bond_must_be_exact() {
        let mut b = DdgBuilder::new("bond");
        let p = b.add_op(OpKind::Add, "p"); // lat 4
        let s = b.add_op(OpKind::Store, "s");
        b.bond(p, s);
        let g = b.build().unwrap();
        let m = MachineConfig::p1l4();
        assert_eq!(Schedule::new(1, vec![0, 4]).verify(&g, &m), Ok(()));
        assert!(matches!(
            Schedule::new(1, vec![0, 5]).verify(&g, &m),
            Err(VerifyError::BondViolated { expected: 4, actual: 5, .. })
        ));
    }

    #[test]
    fn from_fixed_accepts_permuted_assignments() {
        let s = Schedule::from_fixed(2, &[(OpId::new(1), 4), (OpId::new(0), 0)]);
        assert_eq!(s.start(OpId::new(1)), 4);
    }

    #[test]
    #[should_panic(expected = "duplicate assignment")]
    fn from_fixed_rejects_duplicates() {
        let _ = Schedule::from_fixed(2, &[(OpId::new(0), 0), (OpId::new(0), 1)]);
    }

    #[test]
    fn wrong_length_detected() {
        let g = chain();
        let m = MachineConfig::p1l4();
        let s = Schedule::new(1, vec![0, 2]);
        assert!(matches!(s.verify(&g, &m), Err(VerifyError::WrongLength { .. })));
    }

    #[test]
    fn display_mentions_ii_and_stages() {
        let s = Schedule::new(2, vec![0, 2, 6]);
        let txt = s.to_string();
        assert!(txt.contains("II=2"));
        assert!(txt.contains("SC=4"));
    }
}
