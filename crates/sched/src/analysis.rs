//! Timing analysis: ASAP/ALAP starts, depth, height and mobility for a
//! candidate II.

use regpipe_ddg::{Ddg, OpId};
use regpipe_machine::MachineConfig;

use crate::loop_analysis::{op_latencies, timed_edges, TimedEdge};

/// Per-operation timing bounds at a fixed candidate II.
///
/// `asap` is the earliest start consistent with all dependences (longest
/// path from the graph's sources with edge weights `lat − δ·II`); `alap` is
/// the latest start that still allows every other operation to meet the
/// critical path length. `mobility = alap − asap` is the scheduling slack
/// used for tie-breaking in the ordering phase.
///
/// The analysis is only well-defined for `ii ≥ RecMII`; at smaller IIs the
/// longest-path iteration would not converge. [`TimeAnalysis::new`] bails
/// out (returns `None`) if it detects divergence, which doubles as a cheap
/// RecMII feasibility check.
///
/// Alongside each bound the analysis tracks the total dependence *distance*
/// of the path that produced it. Those distances let the solution at one II
/// seed the fixpoint iteration at a larger II (see
/// [`LoopAnalysis::time_analysis`](crate::LoopAnalysis::time_analysis)):
/// the II sweep inside a scheduler warm-starts each analysis from the
/// previous one instead of relaxing from scratch.
#[derive(Clone, Debug)]
pub struct TimeAnalysis {
    ii: u32,
    asap: Vec<i64>,
    alap: Vec<i64>,
    horizon: i64,
    /// Σδ of the maximizing path behind each `asap` entry.
    asap_dist: Vec<i64>,
    /// Σδ of the binding path behind each `alap` entry.
    alap_dist: Vec<i64>,
}

impl TimeAnalysis {
    /// Runs the analysis for `ii`; `None` if `ii < RecMII` (divergent).
    pub fn new(ddg: &Ddg, machine: &MachineConfig, ii: u32) -> Option<Self> {
        let edges = timed_edges(ddg, machine);
        let latency = op_latencies(ddg, machine);
        Self::compute(ddg.num_ops(), &edges, &latency, ii, None)
    }

    /// Core fixpoint computation over pre-resolved edge timings.
    ///
    /// `warm` may carry the solution for a *smaller* II of the same graph.
    /// Each bound's recorded path distance gives a valid value of that same
    /// path at the new II (`asap − δ·ΔII`), which under-approximates the new
    /// ASAP fixpoint (and symmetrically over-approximates the new ALAP), so
    /// relaxation can start there and still converge to the exact same
    /// least/greatest fixpoint a cold start reaches — usually in one pass.
    pub(crate) fn compute(
        n: usize,
        edges: &[TimedEdge],
        latency: &[i64],
        ii: u32,
        warm: Option<&TimeAnalysis>,
    ) -> Option<Self> {
        let ii64 = i64::from(ii);
        let warm = warm.filter(|w| w.ii < ii);
        let delta = warm.map_or(0, |w| ii64 - i64::from(w.ii));

        // ASAP: least fixpoint of max-relaxation, floored at 0.
        let mut asap = vec![0i64; n];
        let mut asap_dist = vec![0i64; n];
        if let Some(w) = warm {
            for v in 0..n {
                let seeded = w.asap[v] - w.asap_dist[v] * delta;
                if seeded > 0 {
                    asap[v] = seeded;
                    asap_dist[v] = w.asap_dist[v];
                }
            }
        }
        let mut changed = true;
        let mut rounds = 0usize;
        while changed {
            changed = false;
            rounds += 1;
            if rounds > n + 1 {
                return None; // positive cycle: ii < RecMII
            }
            for e in edges {
                let cand = asap[e.from] + e.lat - ii64 * e.dist;
                if cand > asap[e.to] {
                    asap[e.to] = cand;
                    asap_dist[e.to] = asap_dist[e.from] + e.dist;
                    changed = true;
                }
            }
        }
        // Critical path length: the makespan if every op ran to completion.
        let horizon = (0..n).map(|v| asap[v] + latency[v]).max().unwrap_or(0);

        // ALAP: greatest fixpoint of min-relaxation, capped at
        // `horizon − latency`.
        let mut alap: Vec<i64> = (0..n).map(|v| horizon - latency[v]).collect();
        let mut alap_dist = vec![0i64; n];
        if let Some(w) = warm {
            let shift = horizon - w.horizon;
            for v in 0..n {
                let seeded = w.alap[v] + w.alap_dist[v] * delta + shift;
                if seeded < alap[v] {
                    alap[v] = seeded;
                    alap_dist[v] = w.alap_dist[v];
                }
            }
        }
        changed = true;
        rounds = 0;
        while changed {
            changed = false;
            rounds += 1;
            if rounds > n + 1 {
                return None;
            }
            for e in edges {
                let cand = alap[e.to] - e.lat + ii64 * e.dist;
                if cand < alap[e.from] {
                    alap[e.from] = cand;
                    alap_dist[e.from] = alap_dist[e.to] + e.dist;
                    changed = true;
                }
            }
        }
        Some(TimeAnalysis { ii, asap, alap, horizon, asap_dist, alap_dist })
    }

    /// The II this analysis was computed for.
    pub fn ii(&self) -> u32 {
        self.ii
    }

    /// Earliest feasible start of `op` (a.k.a. depth).
    pub fn asap(&self, op: OpId) -> i64 {
        self.asap[op.index()]
    }

    /// Latest start of `op` that keeps the critical path.
    pub fn alap(&self, op: OpId) -> i64 {
        self.alap[op.index()]
    }

    /// Scheduling slack of `op`.
    pub fn mobility(&self, op: OpId) -> i64 {
        self.alap[op.index()] - self.asap[op.index()]
    }

    /// Length of the critical path (maximum `asap + latency` over all
    /// operations); useful as a schedule-span estimate.
    pub fn critical_path(&self) -> i64 {
        self.horizon
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regpipe_ddg::{DdgBuilder, OpKind};
    use regpipe_machine::MachineConfig;

    #[test]
    fn chain_asap_accumulates_latencies() {
        let mut b = DdgBuilder::new("chain");
        let l = b.add_op(OpKind::Load, "l"); // lat 2
        let m = b.add_op(OpKind::Mul, "m"); // lat 4
        let s = b.add_op(OpKind::Store, "s");
        b.reg(l, m);
        b.reg(m, s);
        let g = b.build().unwrap();
        let machine = MachineConfig::p1l4();
        let t = TimeAnalysis::new(&g, &machine, 1).unwrap();
        assert_eq!(t.asap(l), 0);
        assert_eq!(t.asap(m), 2);
        assert_eq!(t.asap(s), 6);
        assert_eq!(t.mobility(l), 0, "single chain: no slack");
        assert_eq!(t.mobility(s), 0);
    }

    #[test]
    fn loop_carried_edge_relaxes_with_ii() {
        let mut b = DdgBuilder::new("lc");
        let a = b.add_op(OpKind::Add, "a");
        let c = b.add_op(OpKind::Add, "c");
        b.reg(a, c);
        b.reg_dist(c, a, 1);
        let g = b.build().unwrap();
        let machine = MachineConfig::p1l4();
        // RecMII = 8: at II 8 the back edge is tight but feasible.
        assert!(TimeAnalysis::new(&g, &machine, 8).is_some());
        assert!(TimeAnalysis::new(&g, &machine, 7).is_none(), "diverges below RecMII");
    }

    #[test]
    fn side_branch_has_mobility() {
        // l -> add -> st and l -> st (short branch has slack).
        let mut b = DdgBuilder::new("slack");
        let l = b.add_op(OpKind::Load, "l");
        let a = b.add_op(OpKind::Add, "a");
        let c = b.add_op(OpKind::Copy, "c");
        let s = b.add_op(OpKind::Store, "s");
        b.reg(l, a);
        b.reg(l, c); // copy lat 1, parallel to add lat 4
        b.reg(a, s);
        b.reg(c, s);
        let g = b.build().unwrap();
        let machine = MachineConfig::p1l4();
        let t = TimeAnalysis::new(&g, &machine, 4).unwrap();
        assert_eq!(t.mobility(a), 0);
        assert_eq!(t.mobility(c), 3, "copy can slide by lat(add)-lat(copy)");
    }

    /// Warm-started analyses must be indistinguishable from cold ones: the
    /// ASAP/ALAP fixpoints are unique, so any valid seeding converges to
    /// exactly the cold-start values.
    #[test]
    fn warm_start_matches_cold_start() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(23);
        let machine = MachineConfig::p2l4();
        for case in 0..60 {
            let n = rng.random_range(2..16usize);
            let mut b = DdgBuilder::new(format!("w{case}"));
            let kinds = [OpKind::Load, OpKind::Add, OpKind::Mul, OpKind::Copy, OpKind::Div];
            let ops: Vec<_> = (0..n)
                .map(|i| b.add_op(kinds[rng.random_range(0..kinds.len())], format!("n{i}")))
                .collect();
            for _ in 0..rng.random_range(1..3 * n) {
                let f = ops[rng.random_range(0..n)];
                let t = ops[rng.random_range(0..n)];
                if t > f {
                    b.reg_dist(f, t, rng.random_range(0..3u32));
                } else if t < f {
                    b.reg_dist(f, t, rng.random_range(1..4u32));
                }
            }
            let Ok(g) = b.build() else { continue };
            let edges = timed_edges(&g, &machine);
            let latency = op_latencies(&g, &machine);
            let lo = crate::rec_mii(&g, &machine);
            let mut prev: Option<TimeAnalysis> = None;
            for ii in lo..lo + 6 {
                let cold =
                    TimeAnalysis::new(&g, &machine, ii).expect("feasible at ii >= RecMII");
                let warm = TimeAnalysis::compute(n, &edges, &latency, ii, prev.as_ref())
                    .expect("warm start stays feasible");
                assert_eq!(warm.asap, cold.asap, "case {case} ii {ii}: asap\n{g}");
                assert_eq!(warm.alap, cold.alap, "case {case} ii {ii}: alap\n{g}");
                assert_eq!(warm.horizon, cold.horizon, "case {case} ii {ii}: horizon");
                prev = Some(warm);
            }
        }
    }
}
