//! Timing analysis: ASAP/ALAP starts, depth, height and mobility for a
//! candidate II.

use regpipe_ddg::{Ddg, OpId};
use regpipe_machine::MachineConfig;

use crate::edge_latency;

/// Per-operation timing bounds at a fixed candidate II.
///
/// `asap` is the earliest start consistent with all dependences (longest
/// path from the graph's sources with edge weights `lat − δ·II`); `alap` is
/// the latest start that still allows every other operation to meet the
/// critical path length. `mobility = alap − asap` is the scheduling slack
/// used for tie-breaking in the ordering phase.
///
/// The analysis is only well-defined for `ii ≥ RecMII`; at smaller IIs the
/// longest-path iteration would not converge. [`TimeAnalysis::new`] bails
/// out (returns `None`) if it detects divergence, which doubles as a cheap
/// RecMII feasibility check.
#[derive(Clone, Debug)]
pub struct TimeAnalysis {
    ii: u32,
    asap: Vec<i64>,
    alap: Vec<i64>,
    horizon: i64,
}

impl TimeAnalysis {
    /// Runs the analysis for `ii`; `None` if `ii < RecMII` (divergent).
    pub fn new(ddg: &Ddg, machine: &MachineConfig, ii: u32) -> Option<Self> {
        let n = ddg.num_ops();
        let mut asap = vec![0i64; n];
        // Bellman–Ford style relaxation; at most n rounds when feasible.
        let mut changed = true;
        let mut rounds = 0usize;
        while changed {
            changed = false;
            rounds += 1;
            if rounds > n + 1 {
                return None; // positive cycle: ii < RecMII
            }
            for e in ddg.edges() {
                let w = edge_latency(machine, ddg, e) - i64::from(ii) * i64::from(e.distance());
                let cand = asap[e.from().index()] + w;
                if cand > asap[e.to().index()] {
                    asap[e.to().index()] = cand;
                    changed = true;
                }
            }
        }
        // Critical path length: the makespan if every op ran to completion.
        let horizon = ddg
            .ops()
            .map(|(id, node)| asap[id.index()] + i64::from(machine.latency(node.kind())))
            .max()
            .unwrap_or(0);
        let mut alap = vec![horizon; n];
        for (id, node) in ddg.ops() {
            alap[id.index()] = horizon - i64::from(machine.latency(node.kind()));
        }
        changed = true;
        rounds = 0;
        while changed {
            changed = false;
            rounds += 1;
            if rounds > n + 1 {
                return None;
            }
            for e in ddg.edges() {
                let w = edge_latency(machine, ddg, e) - i64::from(ii) * i64::from(e.distance());
                let cand = alap[e.to().index()] - w;
                if cand < alap[e.from().index()] {
                    alap[e.from().index()] = cand;
                    changed = true;
                }
            }
        }
        Some(TimeAnalysis { ii, asap, alap, horizon })
    }

    /// The II this analysis was computed for.
    pub fn ii(&self) -> u32 {
        self.ii
    }

    /// Earliest feasible start of `op` (a.k.a. depth).
    pub fn asap(&self, op: OpId) -> i64 {
        self.asap[op.index()]
    }

    /// Latest start of `op` that keeps the critical path.
    pub fn alap(&self, op: OpId) -> i64 {
        self.alap[op.index()]
    }

    /// Scheduling slack of `op`.
    pub fn mobility(&self, op: OpId) -> i64 {
        self.alap[op.index()] - self.asap[op.index()]
    }

    /// Length of the critical path (maximum `asap + latency` over all
    /// operations); useful as a schedule-span estimate.
    pub fn critical_path(&self) -> i64 {
        self.horizon
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regpipe_ddg::{DdgBuilder, OpKind};
    use regpipe_machine::MachineConfig;

    #[test]
    fn chain_asap_accumulates_latencies() {
        let mut b = DdgBuilder::new("chain");
        let l = b.add_op(OpKind::Load, "l"); // lat 2
        let m = b.add_op(OpKind::Mul, "m"); // lat 4
        let s = b.add_op(OpKind::Store, "s");
        b.reg(l, m);
        b.reg(m, s);
        let g = b.build().unwrap();
        let machine = MachineConfig::p1l4();
        let t = TimeAnalysis::new(&g, &machine, 1).unwrap();
        assert_eq!(t.asap(l), 0);
        assert_eq!(t.asap(m), 2);
        assert_eq!(t.asap(s), 6);
        assert_eq!(t.mobility(l), 0, "single chain: no slack");
        assert_eq!(t.mobility(s), 0);
    }

    #[test]
    fn loop_carried_edge_relaxes_with_ii() {
        let mut b = DdgBuilder::new("lc");
        let a = b.add_op(OpKind::Add, "a");
        let c = b.add_op(OpKind::Add, "c");
        b.reg(a, c);
        b.reg_dist(c, a, 1);
        let g = b.build().unwrap();
        let machine = MachineConfig::p1l4();
        // RecMII = 8: at II 8 the back edge is tight but feasible.
        assert!(TimeAnalysis::new(&g, &machine, 8).is_some());
        assert!(TimeAnalysis::new(&g, &machine, 7).is_none(), "diverges below RecMII");
    }

    #[test]
    fn side_branch_has_mobility() {
        // l -> add -> st and l -> st (short branch has slack).
        let mut b = DdgBuilder::new("slack");
        let l = b.add_op(OpKind::Load, "l");
        let a = b.add_op(OpKind::Add, "a");
        let c = b.add_op(OpKind::Copy, "c");
        let s = b.add_op(OpKind::Store, "s");
        b.reg(l, a);
        b.reg(l, c); // copy lat 1, parallel to add lat 4
        b.reg(a, s);
        b.reg(c, s);
        let g = b.build().unwrap();
        let machine = MachineConfig::p1l4();
        let t = TimeAnalysis::new(&g, &machine, 4).unwrap();
        assert_eq!(t.mobility(a), 0);
        assert_eq!(t.mobility(c), 3, "copy can slide by lat(add)-lat(copy)");
    }
}
