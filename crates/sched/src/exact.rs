//! An exact modulo scheduler: branch-and-bound over the modulo-schedule
//! space, used as the *optimality oracle* the heuristic registry is
//! measured against (`regpipe gap`).
//!
//! The search enumerates candidate IIs from `max(MII, min_ii)` upward.
//! For each II it decides feasibility by a depth-first search over the
//! complex-operation groups (recurrence sets first, in the shared
//! [`LoopAnalysis`] priority order), assigning each group a start cycle
//! from a finite window and placing its members transactionally in a
//! modulo reservation table. The first feasible II is **optimal**,
//! because every smaller II in range was exhaustively refuted.
//!
//! # Pruning
//!
//! * **Lower bounds**: the II sweep starts at `max(ResMII, RecMII)` from
//!   the cached analysis, so no II below the classical bounds is ever
//!   searched.
//! * **Positive-cycle refutation**: the group-level difference-constraint
//!   graph at a candidate II (edge weight `lat − II·δ` folded with bond
//!   offsets) is checked for positive cycles; one positive cycle refutes
//!   the II without any enumeration.
//! * **Finite complete windows**: each group's start is searched in
//!   `[est, est + (G+2)·II]`, where `est` is the least fixpoint of the
//!   difference constraints floored at 0. Any feasible schedule can be
//!   retimed — shifting operations by multiples of II, which preserves
//!   both the reservation table and all dependences — into these windows,
//!   so an exhausted search is a proof of infeasibility (see
//!   `docs/algorithms.md` for the argument).
//! * **Incremental bounds consistency**: every placement propagates
//!   earliest/latest bounds through the difference constraints with a
//!   trail-based undo stack; an empty window anywhere prunes the subtree.
//! * **Incumbent capping**: an HRMS schedule (computed through the same
//!   context) seeds the search, so the II sweep never probes beyond the
//!   heuristic's II — at that II the incumbent itself is the witness.
//!
//! # Budget, not wall clock
//!
//! The search is bounded by a **node budget** (one node per placement
//! attempt) rather than a timeout, so results are bit-reproducible on any
//! machine at any parallelism — the property every `BENCH_*.json`
//! determinism gate in this repository rests on. When the budget runs
//! out the scheduler returns the best schedule found so far and reports
//! [`ExactStatus::BudgetExhausted`]; it never silently claims optimality.

use regpipe_ddg::{Ddg, OpId, OpKind};
use regpipe_machine::{MachineConfig, Mrt};

use crate::loop_analysis::LoopAnalysis;
use crate::{HrmsScheduler, SchedError, SchedRequest, Schedule, Scheduler};

/// Default node budget: generous for the small kernels the oracle is
/// meant for (a node is one placement attempt; ≤ ~12-op kernels usually
/// prove optimality in well under a thousand nodes).
pub const DEFAULT_NODE_BUDGET: u64 = 200_000;

/// How an [`ExactOutcome`] was concluded.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ExactStatus {
    /// The schedule's II is proven optimal: every smaller II at or above
    /// the request's lower bound was exhaustively refuted.
    Proven,
    /// The node budget ran out first. The schedule is the best found so
    /// far (typically the HRMS incumbent) and carries no optimality
    /// claim.
    BudgetExhausted,
}

/// The result of an exact scheduling run: the best schedule found plus
/// an explicit statement of what was proven about it.
#[derive(Clone, Debug)]
pub struct ExactOutcome {
    /// The best schedule found (II-optimal iff `status` is `Proven`).
    pub schedule: Schedule,
    /// Whether the schedule's II is proven optimal.
    pub status: ExactStatus,
    /// Search nodes spent (placement attempts plus per-II overheads).
    pub nodes: u64,
    /// Whether the schedule's span (and hence stage count) is also
    /// proven minimal *at its II*. Span is tightened with leftover
    /// budget after the II proof; it may remain unproven even when the
    /// II is proven.
    pub span_proven: bool,
}

impl ExactOutcome {
    /// Whether the schedule's II is proven optimal.
    pub fn proven(&self) -> bool {
        self.status == ExactStatus::Proven
    }
}

/// The exact branch-and-bound modulo scheduler.
///
/// The search and pruning rules are specified in
/// `docs/algorithms.md` ("The exact oracle: branch and bound"). As a
/// [`Scheduler`] it returns the best schedule found within the node
/// budget; call [`ExactScheduler::solve_in`] to also learn whether that
/// schedule is proven optimal.
#[derive(Clone, Copy, Debug)]
pub struct ExactScheduler {
    node_budget: u64,
}

impl Default for ExactScheduler {
    fn default() -> Self {
        ExactScheduler { node_budget: DEFAULT_NODE_BUDGET }
    }
}

impl ExactScheduler {
    /// The scheduler with the default node budget
    /// ([`DEFAULT_NODE_BUDGET`]). This is the configuration registered
    /// as `SchedulerKind::Exact`, so cache keys and reports that carry
    /// only the scheduler slug stay unambiguous.
    pub fn new() -> Self {
        ExactScheduler::default()
    }

    /// The scheduler with an explicit node budget (the `gap` verb's
    /// `--node-budget` knob). A budget of 0 proves nothing: the run
    /// returns the heuristic incumbent with
    /// [`ExactStatus::BudgetExhausted`].
    pub fn with_budget(node_budget: u64) -> Self {
        ExactScheduler { node_budget }
    }

    /// The configured node budget.
    pub fn node_budget(&self) -> u64 {
        self.node_budget
    }

    /// Runs the full search on a prebuilt context and reports the
    /// outcome, including proof status and nodes spent.
    ///
    /// # Errors
    ///
    /// [`SchedError::InfeasibleRequest`] for an empty II range and
    /// [`SchedError::NoScheduleUpTo`] when no schedule was found at all
    /// (every II in range refuted, or the budget ran out before any
    /// schedule — including the heuristic incumbent's — was obtained).
    pub fn solve_in(
        &self,
        ctx: &LoopAnalysis<'_>,
        request: &SchedRequest,
    ) -> Result<ExactOutcome, SchedError> {
        let lower = ctx.mii().max(request.min_ii.unwrap_or(1));
        let upper = request.max_ii.unwrap_or_else(|| ctx.fallback_max_ii());
        if upper < lower {
            return Err(SchedError::InfeasibleRequest { min_ii: lower, max_ii: upper });
        }

        // The heuristic incumbent: upper-bounds the II sweep and is the
        // best-so-far schedule whenever the budget runs out early.
        let incumbent = HrmsScheduler::new().schedule_in(ctx, request).ok();
        let mut budget = Budget::new(self.node_budget);
        let mut iis_tried = 0u32;
        let sweep_upper = incumbent.as_ref().map_or(upper, |s| s.ii().min(upper));

        let mut witness: Option<(u32, Vec<i64>)> = None;
        for ii in lower..=sweep_upper {
            iis_tried += 1;
            if !budget.charge() {
                return self.exhausted(incumbent, iis_tried, budget.used);
            }
            if incumbent.as_ref().is_some_and(|s| s.ii() == ii) {
                // The incumbent witnesses feasibility at this II; charge
                // one node for the conclusion so a starved budget still
                // reports exhaustion instead of a free proof.
                if !budget.charge() {
                    return self.exhausted(incumbent, iis_tried, budget.used);
                }
                let starts = incumbent.as_ref().expect("checked").starts().to_vec();
                witness = Some((ii, starts));
                break;
            }
            match decide(ctx, ii, None, &mut budget) {
                Decision::Sat(starts) => {
                    witness = Some((ii, starts));
                    break;
                }
                Decision::Unsat => {}
                Decision::Exhausted => {
                    return self.exhausted(incumbent, iis_tried, budget.used);
                }
            }
        }

        let Some((ii, starts)) = witness else {
            // Every II in [lower, upper] was exhaustively refuted (the
            // sweep is only capped below `upper` when an incumbent
            // exists, and then the incumbent's own II yields a witness).
            return Err(SchedError::NoScheduleUpTo { max_ii: upper });
        };

        // II proven optimal. Tighten the span with the remaining budget:
        // repeatedly ask for a schedule whose last start beats the best
        // witness. An exhausted tightening search proves span minimality
        // at this II; running out of budget leaves it honest-but-open.
        let mut best = Schedule::with_provenance(ii, starts, "exact", iis_tried);
        if let Some(inc) = &incumbent {
            if inc.ii() == ii && inc.last_start() < best.last_start() {
                best = Schedule::with_provenance(ii, inc.starts().to_vec(), "exact", iis_tried);
            }
        }
        let mut span_proven = false;
        loop {
            let target = best.last_start() - 1;
            if target < 0 {
                span_proven = true;
                break;
            }
            if !budget.charge() {
                break;
            }
            match decide(ctx, ii, Some(target), &mut budget) {
                Decision::Sat(starts) => {
                    best = Schedule::with_provenance(ii, starts, "exact", iis_tried);
                }
                Decision::Unsat => {
                    span_proven = true;
                    break;
                }
                Decision::Exhausted => break,
            }
        }

        Ok(ExactOutcome {
            schedule: best,
            status: ExactStatus::Proven,
            nodes: budget.used,
            span_proven,
        })
    }

    /// Convenience wrapper building the [`LoopAnalysis`] itself.
    ///
    /// # Errors
    ///
    /// As for [`ExactScheduler::solve_in`].
    pub fn solve(
        &self,
        ddg: &Ddg,
        machine: &MachineConfig,
        request: &SchedRequest,
    ) -> Result<ExactOutcome, SchedError> {
        self.solve_in(&LoopAnalysis::new(ddg, machine), request)
    }

    fn exhausted(
        &self,
        incumbent: Option<Schedule>,
        iis_tried: u32,
        nodes: u64,
    ) -> Result<ExactOutcome, SchedError> {
        match incumbent {
            Some(s) => {
                let ii = s.ii();
                let schedule =
                    Schedule::with_provenance(ii, s.starts().to_vec(), "exact", iis_tried);
                Ok(ExactOutcome {
                    schedule,
                    status: ExactStatus::BudgetExhausted,
                    nodes,
                    span_proven: false,
                })
            }
            None => Err(SchedError::NoScheduleUpTo { max_ii: 0 }),
        }
    }
}

impl Scheduler for ExactScheduler {
    fn name(&self) -> &'static str {
        "exact"
    }

    fn schedule(
        &self,
        ddg: &Ddg,
        machine: &MachineConfig,
        request: &SchedRequest,
    ) -> Result<Schedule, SchedError> {
        self.schedule_in(&LoopAnalysis::new(ddg, machine), request)
    }

    fn schedule_in(
        &self,
        ctx: &LoopAnalysis<'_>,
        request: &SchedRequest,
    ) -> Result<Schedule, SchedError> {
        self.solve_in(ctx, request).map(|outcome| outcome.schedule)
    }
}

// ----------------------------------------------------------------------
// The per-II decision search
// ----------------------------------------------------------------------

/// A deterministic node-budget meter. `charge` refuses once the budget
/// is spent, so a budget of 0 can never conclude anything.
struct Budget {
    used: u64,
    limit: u64,
}

impl Budget {
    fn new(limit: u64) -> Self {
        Budget { used: 0, limit }
    }

    fn charge(&mut self) -> bool {
        if self.used >= self.limit {
            return false;
        }
        self.used += 1;
        // The cooperative deadline check-point: every 1024 nodes is often
        // enough to bound latency and rare enough to cost nothing.
        if self.used & 0x3FF == 0 {
            crate::deadline::check();
        }
        true
    }
}

/// Outcome of one fixed-II (optionally span-capped) decision search.
enum Decision {
    /// A feasible assignment of start cycles (per op, unnormalized).
    Sat(Vec<i64>),
    /// The search space was exhausted: provably no schedule at this II
    /// (within the span cap, when one was given).
    Unsat,
    /// The node budget ran out mid-search: no conclusion.
    Exhausted,
}

/// Which window bound a trail entry restores.
#[derive(Clone, Copy)]
enum Bound {
    Lo,
    Hi,
}

/// Decides whether a modulo schedule exists at `ii` (with every start
/// cycle at most `cutoff`, when given); see the module docs for the
/// window-completeness argument.
fn decide(
    ctx: &LoopAnalysis<'_>,
    ii: u32,
    cutoff: Option<i64>,
    budget: &mut Budget,
) -> Decision {
    let ii64 = i64::from(ii);
    // Free edges internal to a bonded group have a fixed separation; if
    // that separation undercuts the edge's timing at this II, no
    // placement of the group can ever be valid.
    for e in &ctx.intra_free {
        if e.sep < e.lat - ii64 * e.dist {
            return Decision::Unsat;
        }
    }

    let groups = ctx.groups();
    let g = groups.len();
    // The group-level difference-constraint graph: each cross-group edge
    // `m -> m'` with timing `lat − II·δ` becomes `t(h) − t(g) ≥ w` on
    // the leaders, with the members' bond offsets folded into `w`.
    let mut out: Vec<Vec<(usize, i64)>> = vec![Vec::new(); g];
    let mut inn: Vec<Vec<(usize, i64)>> = vec![Vec::new(); g];
    for e in &ctx.edges {
        let from = OpId::new(e.from);
        let to = OpId::new(e.to);
        let (gf, gt) = (groups.group_of(from), groups.group_of(to));
        if gf == gt {
            continue;
        }
        let w = e.lat - ii64 * e.dist + groups.offset(from) - groups.offset(to);
        out[gf].push((gt, w));
        inn[gt].push((gf, w));
    }

    // Earliest starts: least fixpoint of the difference constraints
    // floored at 0. A positive cycle (no fixpoint) refutes this II — the
    // constraints are all necessary conditions on any valid schedule.
    let mut est = vec![0i64; g];
    for round in 0..=g {
        let mut changed = false;
        for gf in 0..g {
            for &(gt, w) in &out[gf] {
                if est[gf] + w > est[gt] {
                    est[gt] = est[gf] + w;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
        if round == g {
            return Decision::Unsat;
        }
    }

    // Complete search windows: any feasible schedule can be retimed (by
    // per-group multiples of II, preserving residues and hence the
    // reservation table) into `[est, est + (G+2)·II]`; a span cutoff
    // additionally caps every member start at `cutoff`.
    let slack = (g as i64 + 2) * ii64;
    let lo = est.clone();
    let mut hi = Vec::with_capacity(g);
    for (gi, &e) in est.iter().enumerate() {
        let mut h = e + slack;
        if let Some(u) = cutoff {
            let max_off = groups
                .members_of(groups.leader(gi))
                .iter()
                .map(|&m| groups.offset(m))
                .max()
                .expect("groups are non-empty");
            h = h.min(u - max_off);
        }
        if h < lo[gi] {
            return Decision::Unsat;
        }
        hi.push(h);
    }

    let order: Vec<usize> = ctx.sets.iter().flatten().copied().collect();
    debug_assert_eq!(order.len(), g, "priority sets must cover every group once");

    let mut search = Search {
        ctx,
        out,
        inn,
        lo,
        hi,
        order,
        mrt: Mrt::new(ctx.machine(), ii),
        trail: Vec::new(),
        done: Vec::new(),
    };
    search.dfs(0, budget)
}

/// Mutable state of one fixed-II depth-first search.
struct Search<'c, 'a> {
    ctx: &'c LoopAnalysis<'a>,
    /// `out[g]`: constraints `t(h) − t(g) ≥ w` as `(h, w)`.
    out: Vec<Vec<(usize, i64)>>,
    /// `inn[h]`: the same constraints indexed by target, as `(g, w)`.
    inn: Vec<Vec<(usize, i64)>>,
    lo: Vec<i64>,
    hi: Vec<i64>,
    order: Vec<usize>,
    mrt: Mrt,
    /// Undo log of window tightenings: `(group, bound, previous value)`.
    trail: Vec<(usize, Bound, i64)>,
    /// Members committed to the MRT within one transactional attempt.
    done: Vec<(OpKind, i64)>,
}

impl Search<'_, '_> {
    fn dfs(&mut self, depth: usize, budget: &mut Budget) -> Decision {
        if depth == self.order.len() {
            let ctx = self.ctx;
            let groups = ctx.groups();
            let starts = (0..ctx.ddg().num_ops())
                .map(|v| {
                    let op = OpId::new(v);
                    self.lo[groups.group_of(op)] + groups.offset(op)
                })
                .collect();
            return Decision::Sat(starts);
        }
        let gi = self.order[depth];
        let (wlo, whi) = (self.lo[gi], self.hi[gi]);
        let mut t = wlo;
        while t <= whi {
            if !budget.charge() {
                return Decision::Exhausted;
            }
            if self.place_group(gi, t) {
                let mark = self.trail.len();
                self.trail.push((gi, Bound::Lo, self.lo[gi]));
                self.trail.push((gi, Bound::Hi, self.hi[gi]));
                self.lo[gi] = t;
                self.hi[gi] = t;
                if self.propagate(gi) {
                    match self.dfs(depth + 1, budget) {
                        Decision::Sat(s) => return Decision::Sat(s),
                        Decision::Exhausted => {
                            self.undo(mark);
                            self.unplace_group(gi, t);
                            return Decision::Exhausted;
                        }
                        Decision::Unsat => {}
                    }
                }
                self.undo(mark);
                self.unplace_group(gi, t);
            }
            t += 1;
        }
        Decision::Unsat
    }

    /// Transactionally places all members of group `gi` with its leader
    /// at `t`; on any member conflict the committed members are removed
    /// again and the attempt fails as a whole.
    fn place_group(&mut self, gi: usize, t: i64) -> bool {
        let ctx = self.ctx;
        let groups = ctx.groups();
        self.done.clear();
        for &m in groups.members_of(groups.leader(gi)) {
            let kind = ctx.ddg().op(m).kind();
            let cycle = t + groups.offset(m);
            if self.mrt.try_place(kind, cycle) {
                self.done.push((kind, cycle));
            } else {
                for i in 0..self.done.len() {
                    let (k, c) = self.done[i];
                    self.mrt.remove(k, c);
                }
                self.done.clear();
                return false;
            }
        }
        true
    }

    fn unplace_group(&mut self, gi: usize, t: i64) {
        let ctx = self.ctx;
        let groups = ctx.groups();
        for &m in groups.members_of(groups.leader(gi)) {
            self.mrt.remove(ctx.ddg().op(m).kind(), t + groups.offset(m));
        }
    }

    /// Propagates window bounds through the difference constraints to a
    /// fixpoint, starting from `seed`, recording every tightening on the
    /// trail. Returns `false` when some window empties (prune).
    fn propagate(&mut self, seed: usize) -> bool {
        let mut queue = vec![seed];
        while let Some(v) = queue.pop() {
            for i in 0..self.out[v].len() {
                let (w, wt) = self.out[v][i];
                let nl = self.lo[v] + wt;
                if nl > self.lo[w] {
                    if nl > self.hi[w] {
                        return false;
                    }
                    self.trail.push((w, Bound::Lo, self.lo[w]));
                    self.lo[w] = nl;
                    queue.push(w);
                }
            }
            for i in 0..self.inn[v].len() {
                let (u, wt) = self.inn[v][i];
                let nh = self.hi[v] - wt;
                if nh < self.hi[u] {
                    if nh < self.lo[u] {
                        return false;
                    }
                    self.trail.push((u, Bound::Hi, self.hi[u]));
                    self.hi[u] = nh;
                    queue.push(u);
                }
            }
        }
        true
    }

    fn undo(&mut self, mark: usize) {
        while self.trail.len() > mark {
            let (gi, bound, prev) = self.trail.pop().expect("mark within trail");
            match bound {
                Bound::Lo => self.lo[gi] = prev,
                Bound::Hi => self.hi[gi] = prev,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mii;
    use regpipe_ddg::DdgBuilder;

    fn fig2() -> Ddg {
        let mut b = DdgBuilder::new("fig2");
        let ld = b.add_op(OpKind::Load, "Ld");
        let mul = b.add_op(OpKind::Mul, "*");
        let add = b.add_op(OpKind::Add, "+");
        let st = b.add_op(OpKind::Store, "St");
        b.reg(ld, mul);
        b.reg_dist(ld, add, 3);
        b.reg(mul, add);
        b.reg(add, st);
        b.build().unwrap()
    }

    #[test]
    fn proves_fig2_optimal_on_the_uniform_machine() {
        let g = fig2();
        let m = MachineConfig::uniform(4, 2);
        let out = ExactScheduler::new().solve(&g, &m, &SchedRequest::default()).unwrap();
        assert_eq!(out.schedule.ii(), 1, "4 ops on 4 units");
        assert_eq!(out.status, ExactStatus::Proven);
        out.schedule.verify(&g, &m).expect("valid");
        assert_eq!(out.schedule.ii(), mii(&g, &m));
    }

    #[test]
    fn proves_a_recurrence_bound_loop() {
        let mut b = DdgBuilder::new("rec");
        let a = b.add_op(OpKind::Add, "a");
        let c = b.add_op(OpKind::Add, "c");
        b.reg(a, c);
        b.reg_dist(c, a, 1);
        let g = b.build().unwrap();
        let m = MachineConfig::p2l4();
        let out = ExactScheduler::new().solve(&g, &m, &SchedRequest::default()).unwrap();
        assert_eq!(out.schedule.ii(), 8, "RecMII = 8 and it is achievable");
        assert!(out.proven());
        out.schedule.verify(&g, &m).expect("valid");
    }

    #[test]
    fn budget_zero_and_one_exhaust_without_claiming_proof() {
        let g = fig2();
        let m = MachineConfig::p2l4();
        for budget in [0, 1] {
            let out = ExactScheduler::with_budget(budget)
                .solve(&g, &m, &SchedRequest::default())
                .unwrap();
            assert_eq!(out.status, ExactStatus::BudgetExhausted, "budget {budget}");
            assert!(!out.span_proven, "budget {budget}");
            out.schedule.verify(&g, &m).expect("best-so-far is still valid");
        }
    }

    #[test]
    fn budgets_agree_when_both_prove() {
        let g = fig2();
        let m = MachineConfig::p1l4();
        let a = ExactScheduler::with_budget(10_000)
            .solve(&g, &m, &SchedRequest::default())
            .unwrap();
        let b = ExactScheduler::new().solve(&g, &m, &SchedRequest::default()).unwrap();
        assert!(a.proven() && b.proven());
        assert_eq!(a.schedule.ii(), b.schedule.ii());
        if a.span_proven && b.span_proven {
            assert_eq!(a.schedule.last_start(), b.schedule.last_start());
        }
    }

    #[test]
    fn span_is_tightened_and_proven_on_small_kernels() {
        let g = fig2();
        let m = MachineConfig::uniform(4, 2);
        let out = ExactScheduler::new().solve(&g, &m, &SchedRequest::default()).unwrap();
        assert!(out.span_proven);
        // The dataflow chain Ld(2) -> *(2) -> +(2) -> St spans 6 cycles.
        assert_eq!(out.schedule.last_start(), 6);
    }

    #[test]
    fn honours_the_request_range() {
        let mut b = DdgBuilder::new("one");
        b.add_op(OpKind::Add, "a");
        let g = b.build().unwrap();
        let m = MachineConfig::p1l4();
        let out = ExactScheduler::new().solve(&g, &m, &SchedRequest::starting_at(5)).unwrap();
        assert_eq!(out.schedule.ii(), 5, "proven optimal within [5, ..]");
        assert!(out.proven());
        let err = ExactScheduler::new()
            .solve(&g, &m, &SchedRequest { min_ii: Some(9), max_ii: Some(7) })
            .unwrap_err();
        assert!(matches!(err, SchedError::InfeasibleRequest { .. }));
    }

    #[test]
    fn refutes_an_infeasible_ii_range_exhaustively() {
        // Two loads bonded 2 cycles apart on one memory unit: MII = 2,
        // but at II = 2 both land on the same modulo slot, so the search
        // must exhaust II = 2 and prove there is no schedule — not just
        // fail to find one.
        let mut b = DdgBuilder::new("bondclash");
        let l1 = b.add_op(OpKind::Load, "l1");
        let l2 = b.add_op(OpKind::Load, "l2");
        b.bond(l1, l2);
        let g = b.build().unwrap();
        let m = MachineConfig::p1l4();
        assert_eq!(mii(&g, &m), 2);
        let err = ExactScheduler::new()
            .solve(&g, &m, &SchedRequest { min_ii: None, max_ii: Some(2) })
            .unwrap_err();
        assert!(matches!(err, SchedError::NoScheduleUpTo { max_ii: 2 }));
        // One more cycle of II separates the modulo slots again.
        let out = ExactScheduler::new().solve(&g, &m, &SchedRequest::default()).unwrap();
        assert_eq!(out.schedule.ii(), 3, "first feasible II above the clash");
        assert!(out.proven());
        out.schedule.verify(&g, &m).expect("valid");
    }

    #[test]
    fn recurrence_pruning_path_recmii_above_resmii() {
        // One load feeding a latency-4 add chain closed over distance 1:
        // RecMII = 8 while ResMII is tiny, so the sweep starts at the
        // recurrence bound and the first decision search must navigate
        // the cyclic priority set first.
        let mut b = DdgBuilder::new("recdom");
        let l = b.add_op(OpKind::Load, "l");
        let a = b.add_op(OpKind::Add, "a");
        let c = b.add_op(OpKind::Add, "c");
        b.reg(l, a);
        b.reg(a, c);
        b.reg_dist(c, a, 1);
        let g = b.build().unwrap();
        let m = MachineConfig::p2l4();
        let ctx = LoopAnalysis::new(&g, &m);
        assert!(ctx.rec_mii() > ctx.res_mii(), "recurrence must dominate");
        let out = ExactScheduler::new().solve_in(&ctx, &SchedRequest::default()).unwrap();
        assert_eq!(out.schedule.ii(), 8);
        assert!(out.proven());
        out.schedule.verify(&g, &m).expect("valid");
    }

    #[test]
    fn bonded_groups_are_placed_atomically() {
        let mut b = DdgBuilder::new("bond");
        let p = b.add_op(OpKind::Add, "p");
        let s = b.add_op(OpKind::Store, "s");
        b.bond(p, s);
        let l = b.add_op(OpKind::Load, "l");
        let c = b.add_op(OpKind::Mul, "c");
        b.bond(l, c);
        b.mem(s, l, 1);
        let g = b.build().unwrap();
        let m = MachineConfig::p1l4();
        let out = ExactScheduler::new().solve(&g, &m, &SchedRequest::default()).unwrap();
        assert!(out.proven());
        out.schedule.verify(&g, &m).expect("valid");
        assert_eq!(out.schedule.start(s) - out.schedule.start(p), 4);
        assert_eq!(out.schedule.start(c) - out.schedule.start(l), 2);
    }

    #[test]
    fn exact_never_beats_mii_and_never_loses_to_hrms() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let machines = [MachineConfig::p1l4(), MachineConfig::p2l4(), MachineConfig::p2l6()];
        for case in 0..40 {
            let n = rng.random_range(2..10usize);
            let mut b = DdgBuilder::new(format!("x{case}"));
            let kinds = [OpKind::Load, OpKind::Add, OpKind::Mul, OpKind::Copy];
            let ops: Vec<OpId> = (0..n)
                .map(|i| b.add_op(kinds[rng.random_range(0..kinds.len())], format!("n{i}")))
                .collect();
            for _ in 0..rng.random_range(0..2 * n) {
                let f = ops[rng.random_range(0..n)];
                let t = ops[rng.random_range(0..n)];
                if f == t {
                    continue;
                }
                let dist =
                    if t > f { rng.random_range(0..3u32) } else { rng.random_range(1..3u32) };
                b.reg_dist(f, t, dist);
            }
            let Ok(g) = b.build() else { continue };
            let m = &machines[case % machines.len()];
            let out = ExactScheduler::new()
                .solve(&g, m, &SchedRequest::default())
                .unwrap_or_else(|e| panic!("case {case}: {e}\n{g}"));
            out.schedule.verify(&g, m).unwrap_or_else(|e| panic!("case {case}: {e}\n{g}"));
            assert!(out.schedule.ii() >= mii(&g, m), "case {case}");
            let hrms = HrmsScheduler::new().schedule(&g, m, &SchedRequest::default()).unwrap();
            if out.proven() {
                assert!(
                    out.schedule.ii() <= hrms.ii(),
                    "case {case}: proven-optimal II {} beaten by hrms {}\n{g}",
                    out.schedule.ii(),
                    hrms.ii()
                );
            }
        }
    }
}
