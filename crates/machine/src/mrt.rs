//! Modulo reservation table.

use std::fmt;

use regpipe_ddg::OpKind;

use crate::config::{FuClass, MachineConfig};

/// A modulo reservation table for a candidate initiation interval.
///
/// In a modulo schedule, an operation issued at cycle `t` re-issues every II
/// cycles, so resource usage repeats with period II: it suffices to track
/// per-class usage *counts* for each cycle modulo II. A pipelined operation
/// occupies one slot at `t mod II`; a non-pipelined operation of occupancy
/// `o` occupies slots `t, t+1, …, t+o−1` (mod II). When `o > II` the window
/// wraps and some modulo cycles are covered more than once — the count per
/// cycle correctly reflects how many instances are simultaneously in flight
/// in the steady state, so multi-unit classes can sustain `II < o`.
///
/// ```
/// use regpipe_machine::{MachineConfig, Mrt};
/// use regpipe_ddg::OpKind;
///
/// let m = MachineConfig::p1l4();
/// let mut mrt = Mrt::new(&m, 2);
/// assert!(mrt.try_place(OpKind::Load, 0));
/// assert!(mrt.try_place(OpKind::Store, 1));
/// assert!(!mrt.try_place(OpKind::Load, 4), "mem unit full at cycle 0 (mod 2)");
/// mrt.remove(OpKind::Load, 0);
/// assert!(mrt.try_place(OpKind::Load, 4));
/// ```
#[derive(Clone, Debug)]
pub struct Mrt {
    ii: u32,
    /// Unit counts per class (snapshot from the machine).
    units: [u32; FuClass::ALL.len()],
    /// Occupancy per op kind (snapshot from the machine).
    occupancy: [u32; OpKind::ALL.len()],
    /// Class per op kind (snapshot from the machine).
    class: [usize; OpKind::ALL.len()],
    /// `usage[class][cycle]`: number of busy units.
    usage: Vec<Vec<u32>>,
}

impl Mrt {
    /// Creates an empty table for the given machine and II.
    ///
    /// # Panics
    ///
    /// Panics if `ii` is zero.
    pub fn new(machine: &MachineConfig, ii: u32) -> Self {
        assert!(ii > 0, "initiation interval must be positive");
        let mut units = [0u32; FuClass::ALL.len()];
        for c in FuClass::ALL {
            units[c.index()] = machine.units(c);
        }
        let mut occupancy = [0u32; OpKind::ALL.len()];
        let mut class = [0usize; OpKind::ALL.len()];
        for k in OpKind::ALL {
            occupancy[k.index()] = machine.occupancy(k);
            class[k.index()] = machine.class_of(k).index();
        }
        Mrt {
            ii,
            units,
            occupancy,
            class,
            usage: vec![vec![0; ii as usize]; FuClass::ALL.len()],
        }
    }

    /// The initiation interval this table was built for.
    pub fn ii(&self) -> u32 {
        self.ii
    }

    /// Whether an operation of `kind` can issue at `cycle` (cycles may be
    /// negative: the table is modulo II).
    pub fn fits(&self, kind: OpKind, cycle: i64) -> bool {
        let c = self.class[kind.index()];
        let units = self.units[c];
        let occ = self.occupancy[kind.index()];
        // An occupancy spanning w full wraps consumes w units at *every*
        // modulo cycle plus one more at the first `occ mod II` cycles.
        let full_wraps = occ / self.ii;
        let residual = occ - full_wraps * self.ii;
        if full_wraps > units || (full_wraps == units && residual > 0) {
            return false;
        }
        for i in 0..occ.min(self.ii) {
            let idx = self.wrap(cycle + i64::from(i));
            let covered = full_wraps + u32::from(i < residual);
            if self.usage[c][idx] + covered > units {
                return false;
            }
        }
        true
    }

    /// Places an operation, updating the usage counts.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the placement overflows a unit class; use
    /// [`Mrt::try_place`] to check first.
    pub fn place(&mut self, kind: OpKind, cycle: i64) {
        let c = self.class[kind.index()];
        let occ = self.occupancy[kind.index()];
        for i in 0..occ {
            let idx = self.wrap(cycle + i64::from(i));
            self.usage[c][idx] += 1;
            debug_assert!(
                self.usage[c][idx] <= self.units[c],
                "over-subscribed {kind} at cycle {cycle} (ii {})",
                self.ii
            );
        }
    }

    /// Atomically checks and places; returns whether the placement happened.
    pub fn try_place(&mut self, kind: OpKind, cycle: i64) -> bool {
        if self.fits(kind, cycle) {
            self.place(kind, cycle);
            true
        } else {
            false
        }
    }

    /// Removes a previously placed operation.
    ///
    /// # Panics
    ///
    /// Panics if the operation was not placed at `cycle` (usage underflow).
    pub fn remove(&mut self, kind: OpKind, cycle: i64) {
        let c = self.class[kind.index()];
        let occ = self.occupancy[kind.index()];
        for i in 0..occ {
            let idx = self.wrap(cycle + i64::from(i));
            assert!(self.usage[c][idx] > 0, "removing unplaced {kind} at {cycle}");
            self.usage[c][idx] -= 1;
        }
    }

    /// Usage count of `class` at modulo `cycle`.
    pub fn usage(&self, class: FuClass, cycle: i64) -> u32 {
        self.usage[class.index()][self.wrap(cycle)]
    }

    /// Fraction of memory-unit slots in use, in percent (the paper's "bus
    /// utilization" from Figure 7).
    pub fn memory_utilization(&self) -> f64 {
        let c = FuClass::Memory.index();
        let units = self.units[c];
        if units == 0 {
            return 0.0;
        }
        let used: u32 = self.usage[c].iter().sum();
        100.0 * f64::from(used) / (f64::from(units) * f64::from(self.ii))
    }

    fn wrap(&self, cycle: i64) -> usize {
        (cycle.rem_euclid(i64::from(self.ii))) as usize
    }
}

impl fmt::Display for Mrt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "MRT (II = {}):", self.ii)?;
        for class in FuClass::ALL {
            if self.units[class.index()] == 0 {
                continue;
            }
            write!(f, "  {class:>8}: ")?;
            for cycle in 0..self.ii {
                write!(
                    f,
                    "{}/{} ",
                    self.usage[class.index()][cycle as usize],
                    self.units[class.index()]
                )?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipelined_ops_take_one_slot() {
        let m = MachineConfig::p2l4();
        let mut mrt = Mrt::new(&m, 1);
        assert!(mrt.try_place(OpKind::Add, 0));
        assert!(mrt.try_place(OpKind::Add, 0));
        assert!(!mrt.try_place(OpKind::Add, 0), "only two adders");
        assert!(mrt.try_place(OpKind::Mul, 0), "different class still free");
    }

    #[test]
    fn negative_cycles_wrap_correctly() {
        let m = MachineConfig::p1l4();
        let mut mrt = Mrt::new(&m, 3);
        assert!(mrt.try_place(OpKind::Add, -1)); // ≡ cycle 2
        assert!(!mrt.try_place(OpKind::Add, 2));
        assert!(mrt.try_place(OpKind::Add, 0));
    }

    #[test]
    fn non_pipelined_op_blocks_window() {
        let m = MachineConfig::p1l4();
        let mut mrt = Mrt::new(&m, 40);
        assert!(mrt.try_place(OpKind::Div, 0)); // busy 0..17
        assert!(!mrt.try_place(OpKind::Div, 10), "unit busy");
        assert!(!mrt.try_place(OpKind::Div, 16));
        assert!(mrt.try_place(OpKind::Div, 17), "frees at 17");
        assert!(!mrt.try_place(OpKind::Div, 35), "34..52 wraps into 0..12");
    }

    #[test]
    fn two_divs_cannot_share_one_unit_within_their_total_occupancy() {
        // II = 20 < 2 * 17: a single non-pipelined unit can never execute
        // two divides per iteration.
        let m = MachineConfig::p1l4();
        let mut mrt = Mrt::new(&m, 20);
        assert!(mrt.try_place(OpKind::Div, 0));
        for t in 0..20 {
            assert!(!mrt.fits(OpKind::Div, t), "no slot at {t}");
        }
    }

    #[test]
    fn non_pipelined_longer_than_ii_needs_second_unit() {
        // Div occupancy 17 > II 9: one unit can never sustain it, two can.
        let one = MachineConfig::p1l4();
        let mrt1 = Mrt::new(&one, 9);
        assert!(!mrt1.fits(OpKind::Div, 0), "17 > 9 on a single unit");

        let two = MachineConfig::p2l4();
        let mut mrt2 = Mrt::new(&two, 9);
        assert!(mrt2.try_place(OpKind::Div, 0), "two units alternate iterations");
        assert!(!mrt2.try_place(OpKind::Div, 0), "but not a second div per iteration");
    }

    #[test]
    fn occupancy_exactly_ii_fills_one_unit() {
        let two = MachineConfig::p2l4();
        let mut mrt = Mrt::new(&two, 17);
        assert!(mrt.try_place(OpKind::Div, 3));
        assert!(mrt.try_place(OpKind::Div, 5), "second unit");
        assert!(!mrt.try_place(OpKind::Div, 9), "both units saturated");
    }

    #[test]
    fn remove_restores_capacity() {
        let m = MachineConfig::p1l4();
        let mut mrt = Mrt::new(&m, 4);
        assert!(mrt.try_place(OpKind::Load, 1));
        assert!(!mrt.try_place(OpKind::Store, 5)); // 5 mod 4 == 1
        mrt.remove(OpKind::Load, 1);
        assert!(mrt.try_place(OpKind::Store, 5));
    }

    #[test]
    #[should_panic(expected = "removing unplaced")]
    fn removing_unplaced_op_panics() {
        let m = MachineConfig::p1l4();
        let mut mrt = Mrt::new(&m, 4);
        mrt.remove(OpKind::Load, 0);
    }

    #[test]
    fn memory_utilization_percentage() {
        let m = MachineConfig::p1l4();
        let mut mrt = Mrt::new(&m, 4);
        assert_eq!(mrt.memory_utilization(), 0.0);
        mrt.place(OpKind::Load, 0);
        mrt.place(OpKind::Store, 1);
        assert!((mrt.memory_utilization() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn display_shows_usage() {
        let m = MachineConfig::p1l4();
        let mut mrt = Mrt::new(&m, 2);
        mrt.place(OpKind::Load, 0);
        let s = mrt.to_string();
        assert!(s.contains("II = 2"));
        assert!(s.contains("1/1"));
    }
}
