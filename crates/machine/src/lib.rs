//! Machine models for software pipelining.
//!
//! This crate describes the *resources* side of modulo scheduling:
//!
//! * [`MachineConfig`] — functional-unit classes, unit counts, per-operation
//!   latencies and per-class pipelining, with constructors for the three
//!   configurations evaluated in the paper (Section 5): [`MachineConfig::p1l4`],
//!   [`MachineConfig::p2l4`] and [`MachineConfig::p2l6`], plus the didactic
//!   [`MachineConfig::uniform`] machine of the paper's Figure 2.
//! * [`Mrt`] — the modulo reservation table used by the schedulers, with
//!   correct handling of non-pipelined long-latency operations (the paper's
//!   Div/Sqrt unit), including occupancies larger than the II when several
//!   units exist.
//! * [`res_mii`] — the resource-constrained lower bound on the initiation
//!   interval.
//! * [`textfmt`] — the plain-text `.mach` machine-description format used
//!   by on-disk loop corpora (`regpipe suite --corpus`), mirroring the
//!   [`MachineConfig::custom`] parameters.
//!
//! # Example
//!
//! ```
//! use regpipe_ddg::{DdgBuilder, OpKind};
//! use regpipe_machine::{res_mii, MachineConfig};
//!
//! let mut b = DdgBuilder::new("l");
//! let x = b.add_op(OpKind::Load, "x");
//! let y = b.add_op(OpKind::Load, "y");
//! let m = b.add_op(OpKind::Mul, "m");
//! b.reg(x, m);
//! b.reg(y, m);
//! let g = b.build()?;
//!
//! // One load/store unit: the two loads force II >= 2.
//! assert_eq!(res_mii(&MachineConfig::p1l4(), &g), 2);
//! // Two load/store units: II = 1 suffices.
//! assert_eq!(res_mii(&MachineConfig::p2l4(), &g), 1);
//! # Ok::<(), regpipe_ddg::DdgError>(())
//! ```

// Every public item of this crate is documented; CI turns gaps into errors.
#![warn(missing_docs)]

mod config;
mod mrt;
pub mod textfmt;

pub use config::{FuClass, MachineConfig};
pub use mrt::Mrt;

use regpipe_ddg::Ddg;

/// The resource-constrained minimum initiation interval (Section 2.2).
///
/// For each functional-unit class, the total occupancy of the loop's
/// operations divided by the number of units bounds the II from below;
/// `ResMII` is the maximum over classes. Non-pipelined classes contribute
/// their full latency per operation.
///
/// Returns at least 1 (an empty class usage still allows II = 1).
pub fn res_mii(machine: &MachineConfig, ddg: &Ddg) -> u32 {
    let mut occupancy = vec![0u64; machine.num_classes()];
    for (_, node) in ddg.ops() {
        let class = machine.class_of(node.kind());
        occupancy[class.index()] += u64::from(machine.occupancy(node.kind()));
    }
    let mut mii = 1u64;
    for class in machine.classes() {
        let units = u64::from(machine.units(class));
        let occ = occupancy[class.index()];
        if occ > 0 {
            mii = mii.max(occ.div_ceil(units));
        }
    }
    u32::try_from(mii).expect("ResMII overflows u32")
}

#[cfg(test)]
mod tests {
    use super::*;
    use regpipe_ddg::{DdgBuilder, OpKind};

    fn loop_with(kinds: &[OpKind]) -> Ddg {
        let mut b = DdgBuilder::new("l");
        for (i, &k) in kinds.iter().enumerate() {
            b.add_op(k, format!("n{i}"));
        }
        b.build().unwrap()
    }

    #[test]
    fn res_mii_counts_busiest_class() {
        let g = loop_with(&[OpKind::Load, OpKind::Load, OpKind::Store, OpKind::Add]);
        // P1L4: 3 memory ops on 1 unit -> 3.
        assert_eq!(res_mii(&MachineConfig::p1l4(), &g), 3);
        // P2L4: 3 memory ops on 2 units -> 2.
        assert_eq!(res_mii(&MachineConfig::p2l4(), &g), 2);
    }

    #[test]
    fn res_mii_of_trivial_loop_is_one() {
        let g = loop_with(&[OpKind::Add]);
        assert_eq!(res_mii(&MachineConfig::p1l4(), &g), 1);
    }

    #[test]
    fn non_pipelined_divide_contributes_latency() {
        let g = loop_with(&[OpKind::Div]);
        // Div latency 17, not pipelined, 1 unit -> ResMII 17.
        assert_eq!(res_mii(&MachineConfig::p1l4(), &g), 17);
        // Two units halve the bound.
        assert_eq!(res_mii(&MachineConfig::p2l4(), &g), 9);
    }

    #[test]
    fn sqrt_is_heavier_than_div() {
        let g = loop_with(&[OpKind::Sqrt]);
        assert_eq!(res_mii(&MachineConfig::p1l4(), &g), 30);
    }

    #[test]
    fn uniform_machine_spreads_everything() {
        let g = loop_with(&[OpKind::Load, OpKind::Mul, OpKind::Add, OpKind::Store]);
        // The Figure 2 machine: 4 universal units, latency 2, fully pipelined.
        assert_eq!(res_mii(&MachineConfig::uniform(4, 2), &g), 1);
        assert_eq!(res_mii(&MachineConfig::uniform(2, 2), &g), 2);
        assert_eq!(res_mii(&MachineConfig::uniform(1, 2), &g), 4);
    }
}
