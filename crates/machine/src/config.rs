//! Machine configurations.

use std::fmt;

use regpipe_ddg::OpKind;

/// A functional-unit class.
///
/// The paper's machines have four classes (Section 5): a load/store unit,
/// an adder, a multiplier, and a non-pipelined divide/square-root unit.
/// [`FuClass::Universal`] models the didactic machine of Figure 2, where any
/// unit executes any operation.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum FuClass {
    /// Load/store units.
    Memory,
    /// Adders (also execute register copies).
    Adder,
    /// Multipliers.
    Multiplier,
    /// Divide / square-root units.
    DivSqrt,
    /// General-purpose units (uniform machines only).
    Universal,
}

impl FuClass {
    /// All classes, in dense-index order.
    pub const ALL: [FuClass; 5] = [
        FuClass::Memory,
        FuClass::Adder,
        FuClass::Multiplier,
        FuClass::DivSqrt,
        FuClass::Universal,
    ];

    /// Dense index within [`FuClass::ALL`].
    pub fn index(self) -> usize {
        match self {
            FuClass::Memory => 0,
            FuClass::Adder => 1,
            FuClass::Multiplier => 2,
            FuClass::DivSqrt => 3,
            FuClass::Universal => 4,
        }
    }
}

impl fmt::Display for FuClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FuClass::Memory => "mem",
            FuClass::Adder => "add",
            FuClass::Multiplier => "mul",
            FuClass::DivSqrt => "div/sqrt",
            FuClass::Universal => "any",
        };
        f.write_str(s)
    }
}

/// A VLIW machine description: unit counts per class, per-operation
/// latencies, and per-class pipelining.
///
/// All units of a pipelined class accept a new operation every cycle; a
/// non-pipelined unit is busy for the operation's full latency (the paper's
/// Div/Sqrt units are "not pipelined at all").
///
/// The three evaluation machines share the fixed latencies: store 1,
/// load 2, divide 17, square root 30 (Section 5).
///
/// ```
/// use regpipe_machine::MachineConfig;
/// use regpipe_ddg::OpKind;
///
/// let m = MachineConfig::p2l6();
/// assert_eq!(m.latency(OpKind::Add), 6);
/// assert_eq!(m.latency(OpKind::Load), 2);
/// assert_eq!(m.occupancy(OpKind::Div), 17); // non-pipelined
/// assert_eq!(m.occupancy(OpKind::Mul), 1);  // pipelined
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MachineConfig {
    name: String,
    /// Units per class, indexed by [`FuClass::index`]; zero means the class
    /// does not exist on this machine.
    units: [u32; FuClass::ALL.len()],
    /// Latency per op kind, indexed by [`OpKind::index`].
    latency: [u32; OpKind::ALL.len()],
    /// Pipelined flag per class.
    pipelined: [bool; FuClass::ALL.len()],
    /// Whether ops map to the universal class.
    uniform: bool,
}

impl MachineConfig {
    /// Builds a machine with explicit parameters.
    ///
    /// `mem`, `add`, `mul`, `divsqrt` are unit counts; `lat_add`/`lat_mul`
    /// the adder/multiplier latencies. The fixed latencies of the paper
    /// (store 1, load 2, div 17, sqrt 30) are applied, and the Div/Sqrt
    /// class is not pipelined.
    ///
    /// # Panics
    ///
    /// Panics if any unit count or latency is zero.
    pub fn custom(
        name: impl Into<String>,
        mem: u32,
        add: u32,
        mul: u32,
        divsqrt: u32,
        lat_add: u32,
        lat_mul: u32,
    ) -> Self {
        assert!(mem > 0 && add > 0 && mul > 0 && divsqrt > 0, "unit counts must be positive");
        assert!(lat_add > 0 && lat_mul > 0, "latencies must be positive");
        let mut units = [0u32; FuClass::ALL.len()];
        units[FuClass::Memory.index()] = mem;
        units[FuClass::Adder.index()] = add;
        units[FuClass::Multiplier.index()] = mul;
        units[FuClass::DivSqrt.index()] = divsqrt;
        let mut latency = [0u32; OpKind::ALL.len()];
        latency[OpKind::Load.index()] = 2;
        latency[OpKind::Store.index()] = 1;
        latency[OpKind::Add.index()] = lat_add;
        latency[OpKind::Mul.index()] = lat_mul;
        latency[OpKind::Div.index()] = 17;
        latency[OpKind::Sqrt.index()] = 30;
        latency[OpKind::Copy.index()] = 1;
        let mut pipelined = [true; FuClass::ALL.len()];
        pipelined[FuClass::DivSqrt.index()] = false;
        MachineConfig { name: name.into(), units, latency, pipelined, uniform: false }
    }

    /// Configuration **P1L4**: 1 load/store unit, 1 adder, 1 multiplier,
    /// 1 div/sqrt unit; adder and multiplier latency 4.
    pub fn p1l4() -> Self {
        Self::custom("P1L4", 1, 1, 1, 1, 4, 4)
    }

    /// Configuration **P2L4**: 2 units of each kind, latencies as P1L4.
    pub fn p2l4() -> Self {
        Self::custom("P2L4", 2, 2, 2, 2, 4, 4)
    }

    /// Configuration **P2L6**: like P2L4 but adder and multiplier latency 6.
    pub fn p2l6() -> Self {
        Self::custom("P2L6", 2, 2, 2, 2, 6, 6)
    }

    /// The three configurations of the paper's evaluation, in order.
    pub fn paper_configs() -> Vec<MachineConfig> {
        vec![Self::p1l4(), Self::p2l4(), Self::p2l6()]
    }

    /// Parses the CLI/wire machine spelling: `p1l4`, `p2l4`, `p2l6`, or
    /// `uniform:<units>,<latency>`. This is the one spec grammar shared by
    /// every frontend (`regpipe compile --machine`, suite/bench flags, and
    /// the `machine` field of `regpipe serve` requests), so a spelling
    /// accepted anywhere is accepted everywhere.
    ///
    /// ```
    /// use regpipe_machine::MachineConfig;
    ///
    /// assert_eq!(MachineConfig::parse_spec("p2l4").unwrap(), MachineConfig::p2l4());
    /// assert_eq!(MachineConfig::parse_spec("uniform:4,2").unwrap(), MachineConfig::uniform(4, 2));
    /// assert!(MachineConfig::parse_spec("warp9").is_err());
    /// ```
    ///
    /// # Errors
    ///
    /// Names the unknown machine or the malformed `uniform:` parameter.
    pub fn parse_spec(spec: &str) -> Result<MachineConfig, String> {
        match spec {
            "p1l4" => Ok(MachineConfig::p1l4()),
            "p2l4" => Ok(MachineConfig::p2l4()),
            "p2l6" => Ok(MachineConfig::p2l6()),
            other => {
                if let Some(rest) = other.strip_prefix("uniform:") {
                    let (units, lat) = rest
                        .split_once(',')
                        .ok_or_else(|| format!("bad uniform spec '{other}'"))?;
                    let units: u32 =
                        units.parse().map_err(|_| format!("bad unit count '{units}'"))?;
                    let lat: u32 = lat.parse().map_err(|_| format!("bad latency '{lat}'"))?;
                    if units == 0 || lat == 0 {
                        return Err("uniform machine needs positive units and latency".into());
                    }
                    Ok(MachineConfig::uniform(units, lat))
                } else {
                    Err(format!("unknown machine '{other}'"))
                }
            }
        }
    }

    /// A uniform machine: `units` general-purpose fully-pipelined units and
    /// a single latency for every operation (the paper's Figure 2 machine is
    /// `uniform(4, 2)`).
    ///
    /// # Panics
    ///
    /// Panics if `units` or `latency` is zero.
    pub fn uniform(units: u32, latency: u32) -> Self {
        assert!(units > 0, "unit count must be positive");
        assert!(latency > 0, "latency must be positive");
        let mut unit_arr = [0u32; FuClass::ALL.len()];
        unit_arr[FuClass::Universal.index()] = units;
        MachineConfig {
            name: format!("U{units}L{latency}"),
            units: unit_arr,
            latency: [latency; OpKind::ALL.len()],
            pipelined: [true; FuClass::ALL.len()],
            uniform: true,
        }
    }

    /// The machine's name (e.g. `"P2L4"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether this is a [`MachineConfig::uniform`] machine (every op runs
    /// on the universal class).
    pub fn is_uniform(&self) -> bool {
        self.uniform
    }

    /// Overrides the unit count of `class`.
    ///
    /// The machine-description text format (see [`crate::textfmt`]) builds
    /// machines by applying overrides like this one to the
    /// [`MachineConfig::custom`] baseline.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero — every class of a 4-class machine must
    /// exist (zero-unit classes would make [`crate::res_mii`] undefined
    /// for loops using them).
    pub fn set_units(&mut self, class: FuClass, count: u32) {
        assert!(count > 0, "unit counts must be positive");
        self.units[class.index()] = count;
    }

    /// Overrides the latency of `kind`.
    ///
    /// # Panics
    ///
    /// Panics if `latency` is zero.
    pub fn set_latency(&mut self, kind: OpKind, latency: u32) {
        assert!(latency > 0, "latencies must be positive");
        self.latency[kind.index()] = latency;
    }

    /// Overrides the pipelining flag of `class`.
    pub fn set_pipelined(&mut self, class: FuClass, pipelined: bool) {
        self.pipelined[class.index()] = pipelined;
    }

    /// Number of functional-unit classes that exist on this machine.
    pub fn num_classes(&self) -> usize {
        FuClass::ALL.len()
    }

    /// The classes with at least one unit.
    pub fn classes(&self) -> impl Iterator<Item = FuClass> + '_ {
        FuClass::ALL.into_iter().filter(|c| self.units[c.index()] > 0)
    }

    /// The class executing `kind` on this machine.
    pub fn class_of(&self, kind: OpKind) -> FuClass {
        if self.uniform {
            return FuClass::Universal;
        }
        match kind {
            OpKind::Load | OpKind::Store => FuClass::Memory,
            OpKind::Add | OpKind::Copy => FuClass::Adder,
            OpKind::Mul => FuClass::Multiplier,
            OpKind::Div | OpKind::Sqrt => FuClass::DivSqrt,
        }
    }

    /// Number of units in `class` (zero if absent).
    pub fn units(&self, class: FuClass) -> u32 {
        self.units[class.index()]
    }

    /// Latency of `kind` in cycles.
    pub fn latency(&self, kind: OpKind) -> u32 {
        self.latency[kind.index()]
    }

    /// Whether `class` is pipelined.
    pub fn is_pipelined(&self, class: FuClass) -> bool {
        self.pipelined[class.index()]
    }

    /// How many consecutive cycles an operation of `kind` occupies one unit:
    /// 1 for pipelined classes, the full latency otherwise.
    pub fn occupancy(&self, kind: OpKind) -> u32 {
        if self.is_pipelined(self.class_of(kind)) {
            1
        } else {
            self.latency(kind)
        }
    }

    /// Total number of functional units (the machine's issue width).
    pub fn total_units(&self) -> u32 {
        self.units.iter().sum()
    }
}

impl fmt::Display for MachineConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (", self.name)?;
        let mut first = true;
        for c in self.classes() {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{}x{}", self.units(c), c)?;
            first = false;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configs_match_section5() {
        let p1 = MachineConfig::p1l4();
        assert_eq!(p1.units(FuClass::Memory), 1);
        assert_eq!(p1.latency(OpKind::Add), 4);
        assert_eq!(p1.latency(OpKind::Mul), 4);
        assert_eq!(p1.latency(OpKind::Store), 1);
        assert_eq!(p1.latency(OpKind::Load), 2);
        assert_eq!(p1.latency(OpKind::Div), 17);
        assert_eq!(p1.latency(OpKind::Sqrt), 30);
        assert!(!p1.is_pipelined(FuClass::DivSqrt));
        assert!(p1.is_pipelined(FuClass::Memory));

        let p2 = MachineConfig::p2l4();
        assert_eq!(p2.units(FuClass::Memory), 2);
        assert_eq!(p2.units(FuClass::DivSqrt), 2);
        assert_eq!(p2.latency(OpKind::Mul), 4);

        let p26 = MachineConfig::p2l6();
        assert_eq!(p26.latency(OpKind::Add), 6);
        assert_eq!(p26.latency(OpKind::Mul), 6);
        assert_eq!(p26.latency(OpKind::Load), 2, "load latency is fixed");
    }

    #[test]
    fn occupancy_reflects_pipelining() {
        let m = MachineConfig::p1l4();
        assert_eq!(m.occupancy(OpKind::Add), 1);
        assert_eq!(m.occupancy(OpKind::Div), 17);
        assert_eq!(m.occupancy(OpKind::Sqrt), 30);
    }

    #[test]
    fn uniform_machine_maps_everything_to_universal() {
        let m = MachineConfig::uniform(4, 2);
        for kind in OpKind::ALL {
            assert_eq!(m.class_of(kind), FuClass::Universal);
            assert_eq!(m.latency(kind), 2);
            assert_eq!(m.occupancy(kind), 1);
        }
        assert_eq!(m.total_units(), 4);
        assert_eq!(m.classes().count(), 1);
    }

    #[test]
    fn copies_run_on_the_adder() {
        let m = MachineConfig::p1l4();
        assert_eq!(m.class_of(OpKind::Copy), FuClass::Adder);
        assert_eq!(m.latency(OpKind::Copy), 1);
    }

    #[test]
    #[should_panic(expected = "unit counts must be positive")]
    fn zero_units_rejected() {
        let _ = MachineConfig::custom("bad", 0, 1, 1, 1, 4, 4);
    }

    #[test]
    fn display_lists_classes() {
        let s = MachineConfig::p2l4().to_string();
        assert!(s.contains("P2L4"));
        assert!(s.contains("2xmem"));
    }

    #[test]
    fn paper_configs_helper_returns_three() {
        let cfgs = MachineConfig::paper_configs();
        assert_eq!(cfgs.len(), 3);
        assert_eq!(cfgs[0].name(), "P1L4");
        assert_eq!(cfgs[2].name(), "P2L6");
    }
}
