//! A plain-text on-disk format for machine descriptions (`.mach` files).
//!
//! A corpus directory (see `regpipe suite --corpus`) may carry one
//! `.mach` file describing the machine its loops should be compiled for;
//! this module is that file's parser and printer. The full grammar is
//! specified in `docs/formats.md` alongside the `.ddg` format; this doc
//! comment and that spec are kept in agreement.
//!
//! One directive per line; `#` starts a comment that runs to the end of
//! the line. A description starts from the [`MachineConfig::custom`]
//! baseline — one unit per class, adder and multiplier latency 4, the
//! paper's fixed latencies (store 1, load 2, div 17, sqrt 30, copy 1),
//! and a non-pipelined div/sqrt class — and each directive overrides one
//! parameter:
//!
//! ```text
//! machine P3L5            # name (optional; default "custom")
//! units mem 3             # unit count per class: mem|add|mul|divsqrt
//! units add 3
//! units mul 3
//! units divsqrt 1
//! latency add 5           # per-op latency: load|store|add|mul|div|sqrt|copy
//! latency mul 5
//! pipelined mem on        # per-class pipelining: on|off
//! pipelined divsqrt off
//! ```
//!
//! [`format()`](fn@format) renders a machine canonically (every parameter explicit, in
//! a fixed order) and [`parse`] round-trips it:
//!
//! ```
//! use regpipe_machine::{textfmt, MachineConfig};
//!
//! let m = MachineConfig::p2l6();
//! let text = textfmt::format(&m);
//! assert_eq!(textfmt::parse(&text)?, m);
//! # Ok::<(), regpipe_machine::textfmt::ParseError>(())
//! ```
//!
//! Only 4-class machines are expressible; the didactic
//! [`MachineConfig::uniform`] machine stays a programmatic (and CLI
//! `--machine uniform:<units>,<latency>`) construct.

use regpipe_ddg::OpKind;

use crate::config::{FuClass, MachineConfig};

/// The shared text-format error type: 1-based line, message, and (when the
/// text came from disk, via [`parse_named`]) the offending file. Machine
/// descriptions and `.ddg` loops render errors identically
/// (`file:line: message`), so corpus loaders handle one shape.
pub use regpipe_ddg::textfmt::ParseError;

/// The four overridable classes, with their format spellings.
const CLASSES: [(FuClass, &str); 4] = [
    (FuClass::Memory, "mem"),
    (FuClass::Adder, "add"),
    (FuClass::Multiplier, "mul"),
    (FuClass::DivSqrt, "divsqrt"),
];

fn parse_class(s: &str) -> Option<FuClass> {
    CLASSES.iter().find(|(_, name)| *name == s).map(|&(c, _)| c)
}

fn parse_op(s: &str) -> Option<OpKind> {
    Some(match s {
        "load" | "ld" => OpKind::Load,
        "store" | "st" => OpKind::Store,
        "add" => OpKind::Add,
        "mul" => OpKind::Mul,
        "div" => OpKind::Div,
        "sqrt" => OpKind::Sqrt,
        "copy" => OpKind::Copy,
        _ => return None,
    })
}

fn op_name(k: OpKind) -> &'static str {
    match k {
        OpKind::Load => "load",
        OpKind::Store => "store",
        OpKind::Add => "add",
        OpKind::Mul => "mul",
        OpKind::Div => "div",
        OpKind::Sqrt => "sqrt",
        OpKind::Copy => "copy",
    }
}

/// Renders `machine` canonically: name, then every unit count, latency and
/// pipelining flag explicitly, in a fixed order. [`parse`] round-trips it.
///
/// # Panics
///
/// Panics on a [uniform](MachineConfig::is_uniform) machine — the format
/// describes 4-class machines only.
pub fn format(machine: &MachineConfig) -> String {
    assert!(
        !machine.is_uniform(),
        "the machine-description format covers 4-class machines only"
    );
    let mut out = String::new();
    out.push_str(&format!("machine {}\n", sanitize_name(machine.name())));
    for (class, name) in CLASSES {
        out.push_str(&format!("units {name} {}\n", machine.units(class)));
    }
    for kind in OpKind::ALL {
        out.push_str(&format!("latency {} {}\n", op_name(kind), machine.latency(kind)));
    }
    for (class, name) in CLASSES {
        let flag = if machine.is_pipelined(class) { "on" } else { "off" };
        out.push_str(&format!("pipelined {name} {flag}\n"));
    }
    out
}

/// Replaces whitespace and `#` in a machine name so it survives a round
/// trip (whitespace would split the token, `#` would start a comment);
/// an empty name falls back to the parser's default.
fn sanitize_name(name: &str) -> String {
    let cleaned: String =
        name.chars().map(|c| if c.is_whitespace() || c == '#' { '_' } else { c }).collect();
    if cleaned.is_empty() {
        "custom".to_string()
    } else {
        cleaned
    }
}

/// [`parse`], with the source file name attached to any error.
///
/// # Errors
///
/// As [`parse`], with [`ParseError::file`] set to `file`.
pub fn parse_named(text: &str, file: impl Into<String>) -> Result<MachineConfig, ParseError> {
    parse(text).map_err(|e| e.with_file(file))
}

/// Parses a machine description into a [`MachineConfig`].
///
/// Starts from the [`MachineConfig::custom`] baseline (units 1/1/1/1,
/// adder and multiplier latency 4) and applies the directives in order;
/// later directives override earlier ones.
///
/// # Errors
///
/// [`ParseError`] on an unknown directive, class or op name, a malformed
/// or zero count/latency, or empty input.
pub fn parse(text: &str) -> Result<MachineConfig, ParseError> {
    let mut machine = MachineConfig::custom("custom", 1, 1, 1, 1, 4, 4);
    let mut saw_directive = false;
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        saw_directive = true;
        let mut words = line.split_whitespace();
        let keyword = words.next().expect("non-empty line");
        match keyword {
            "machine" => {
                let name = words
                    .next()
                    .ok_or_else(|| (line_no, "missing machine name".to_string()))?;
                machine = rename(machine, name);
            }
            "units" => {
                let (class, count) = class_and_number(line_no, &mut words, "unit count")?;
                machine.set_units(class, count);
            }
            "latency" => {
                let op_str =
                    words.next().ok_or_else(|| (line_no, "missing op kind".to_string()))?;
                let op = parse_op(op_str)
                    .ok_or_else(|| (line_no, format!("unknown op kind '{op_str}'")))?;
                let lat = positive_number(line_no, words.next(), "latency")?;
                machine.set_latency(op, lat);
            }
            "pipelined" => {
                let class_str =
                    words.next().ok_or_else(|| (line_no, "missing class name".to_string()))?;
                let class = parse_class(class_str)
                    .ok_or_else(|| (line_no, format!("unknown class '{class_str}'")))?;
                let flag = match words.next() {
                    Some("on") => true,
                    Some("off") => false,
                    other => {
                        return Err((
                            line_no,
                            format!("expected 'on' or 'off', got '{}'", other.unwrap_or("")),
                        )
                            .into())
                    }
                };
                machine.set_pipelined(class, flag);
            }
            other => {
                return Err((line_no, format!("unknown directive '{other}'")).into());
            }
        }
        if let Some(extra) = words.next() {
            return Err((line_no, format!("trailing input '{extra}'")).into());
        }
    }
    if !saw_directive {
        return Err((0usize, "empty machine description".to_string()).into());
    }
    Ok(machine)
}

/// Rebuilds `machine` under a new name (the name is immutable on
/// [`MachineConfig`]; every other parameter is carried over).
fn rename(machine: MachineConfig, name: &str) -> MachineConfig {
    let mut renamed = MachineConfig::custom(
        name,
        machine.units(FuClass::Memory),
        machine.units(FuClass::Adder),
        machine.units(FuClass::Multiplier),
        machine.units(FuClass::DivSqrt),
        machine.latency(OpKind::Add),
        machine.latency(OpKind::Mul),
    );
    for kind in OpKind::ALL {
        renamed.set_latency(kind, machine.latency(kind));
    }
    for (class, _) in CLASSES {
        renamed.set_pipelined(class, machine.is_pipelined(class));
    }
    renamed
}

fn class_and_number<'a>(
    line_no: usize,
    words: &mut impl Iterator<Item = &'a str>,
    what: &str,
) -> Result<(FuClass, u32), ParseError> {
    let class_str = words.next().ok_or_else(|| (line_no, "missing class name".to_string()))?;
    let class = parse_class(class_str)
        .ok_or_else(|| (line_no, format!("unknown class '{class_str}'")))?;
    let n = positive_number(line_no, words.next(), what)?;
    Ok((class, n))
}

fn positive_number(line_no: usize, word: Option<&str>, what: &str) -> Result<u32, ParseError> {
    let raw = word.ok_or_else(|| (line_no, format!("missing {what}")))?;
    match raw.parse::<u32>() {
        Ok(n) if n > 0 => Ok(n),
        _ => Err((line_no, format!("{what} must be a positive integer, got '{raw}'")).into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_machines_round_trip() {
        for m in MachineConfig::paper_configs() {
            let text = format(&m);
            let parsed = parse(&text).unwrap();
            assert_eq!(parsed, m, "{} round-trips", m.name());
            // Canonical printing is a fixed point.
            assert_eq!(format(&parsed), text);
        }
    }

    #[test]
    fn defaults_mirror_custom_baseline() {
        let m = parse("machine m\n").unwrap();
        assert_eq!(m, MachineConfig::custom("m", 1, 1, 1, 1, 4, 4));
        assert!(!m.is_pipelined(FuClass::DivSqrt));
        assert_eq!(m.latency(OpKind::Sqrt), 30);
    }

    #[test]
    fn directives_override_in_order() {
        let m = parse(
            "machine big\nunits mem 4\nunits mem 3 # later wins\nlatency mul 7\n\
             pipelined mul off\npipelined divsqrt on\n",
        )
        .unwrap();
        assert_eq!(m.name(), "big");
        assert_eq!(m.units(FuClass::Memory), 3);
        assert_eq!(m.latency(OpKind::Mul), 7);
        assert!(!m.is_pipelined(FuClass::Multiplier));
        assert!(m.is_pipelined(FuClass::DivSqrt));
        assert_eq!(m.occupancy(OpKind::Mul), 7, "non-pipelined class occupies full latency");
        assert_eq!(m.occupancy(OpKind::Div), 1, "re-pipelined divider accepts every cycle");
    }

    #[test]
    fn comments_blank_lines_and_name_defaults() {
        let m = parse("\n# a header\nunits add 2 # trailing\n").unwrap();
        assert_eq!(m.name(), "custom");
        assert_eq!(m.units(FuClass::Adder), 2);
    }

    #[test]
    fn errors_name_line_and_problem() {
        for (text, line, needle) in [
            ("machine m\nunits foo 2\n", 2, "unknown class 'foo'"),
            ("units mem 0\n", 1, "positive integer"),
            ("units mem two\n", 1, "positive integer"),
            ("latency wibble 3\n", 1, "unknown op kind 'wibble'"),
            ("pipelined mem maybe\n", 1, "expected 'on' or 'off'"),
            ("frequency 3GHz\n", 1, "unknown directive 'frequency'"),
            ("units mem 2 extra\n", 1, "trailing input 'extra'"),
            ("machine\n", 1, "missing machine name"),
            ("latency add\n", 1, "missing latency"),
            ("", 0, "empty machine description"),
            ("# only comments\n", 0, "empty machine description"),
        ] {
            let err = parse(text).unwrap_err();
            assert_eq!(err.line, line, "{text:?}");
            assert!(err.message.contains(needle), "{text:?}: {err}");
        }
    }

    /// Regression: names containing `#` (comment starter) or whitespace,
    /// or empty names, used to break the format→parse round trip.
    #[test]
    fn hostile_names_still_round_trip() {
        for name in ["v2#fast", "two words", ""] {
            let m = MachineConfig::custom(name, 2, 2, 2, 2, 5, 5);
            let parsed = parse(&format(&m)).unwrap();
            assert_eq!(parsed.units(FuClass::Memory), 2, "{name:?}");
            assert_eq!(parsed.latency(OpKind::Add), 5, "{name:?}");
            assert!(!parsed.name().is_empty(), "{name:?}");
        }
        let m = MachineConfig::custom("v2#fast", 1, 1, 1, 1, 4, 4);
        assert_eq!(parse(&format(&m)).unwrap().name(), "v2_fast");
    }

    #[test]
    fn named_parse_renders_file_in_message() {
        let err = parse_named("units mem 0\n", "d/machine.mach").unwrap_err();
        assert_eq!(err.file.as_deref(), Some("d/machine.mach"));
        assert!(err.to_string().starts_with("d/machine.mach:1: "), "{err}");
    }

    #[test]
    #[should_panic(expected = "4-class machines only")]
    fn formatting_a_uniform_machine_panics() {
        let _ = format(&MachineConfig::uniform(4, 2));
    }
}
