//! The paper's running example, step by step (Figures 2, 3, 5 and 6):
//! schedule, measure lifetimes, increase the II, then spill — showing how
//! each mechanism trades throughput, registers and memory traffic.
//!
//! Run with `cargo run --example spill_walkthrough`.

use regpipe::core::{SpillDriver, SpillDriverOptions};
use regpipe::loops::paper::example_loop;
use regpipe::prelude::*;
use regpipe::regalloc::LifetimeAnalysis;
use regpipe::sched::{Kernel, SchedRequest};
use regpipe::spill::SelectHeuristic;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let g = example_loop();
    let m = MachineConfig::uniform(4, 2); // the paper's didactic machine
    let scheduler = HrmsScheduler::new();

    println!("loop: x(i) = y(i)*a + y(i-3)\n{g}");

    // Step 1 — Figure 2: the throughput-optimal schedule (II = 1).
    let s1 = scheduler.schedule(&g, &m, &SchedRequest::default())?;
    let lt1 = LifetimeAnalysis::new(&g, &s1);
    println!("II = {}: {} variant registers (paper: 11)", s1.ii(), lt1.max_live_variants());
    for lt in lt1.lifetimes() {
        println!(
            "  {:<3} lives {:>2} cycles = {} (schedule) + {} (distance)",
            g.op(lt.producer()).name(),
            lt.length(),
            lt.sched_component(),
            lt.dist_component()
        );
    }

    // Step 2 — Figure 3: trade throughput for registers by raising the II.
    let s2 = scheduler.schedule(&g, &m, &SchedRequest::starting_at(2))?;
    let lt2 = LifetimeAnalysis::new(&g, &s2);
    println!(
        "\nII = {}: {} variant registers (paper: 7) — only the *scheduling* \
         components got cheaper; the distance component grew with the II",
        s2.ii(),
        lt2.max_live_variants()
    );

    // Step 3 — Figures 5/6: spill the long lifetime V1 instead.
    let driver = SpillDriver::new(SpillDriverOptions {
        heuristic: SelectHeuristic::MaxLt,
        multi_spill: false,
        last_ii_pruning: false,
        ii_relief: true,
        max_rounds: 16,
        ..SpillDriverOptions::default()
    });
    let out = driver.run(&g, &m, 6)?; // 5 variant regs + the invariant a
    println!(
        "\nafter spilling {} lifetime(s): II = {}, {} variant registers (paper: 5)",
        out.spilled,
        out.schedule.ii(),
        out.allocation.variant_regs()
    );
    println!(
        "memory traffic rose from {} to {} operations per iteration — the \
         price of freeing registers",
        g.memory_ops(),
        out.ddg.memory_ops()
    );
    println!("\nfinal kernel:\n{}", Kernel::new(&out.ddg, &out.schedule));
    Ok(())
}
