//! Compiling one real-shaped loop for every machine configuration and a
//! range of register files — the compiler-writer's view of the paper:
//! which strategy wins where, and what it costs.
//!
//! Run with `cargo run --example constrained_compile`.

use regpipe::core::Strategy;
use regpipe::loops::paper::{apsi47_like, apsi50_like};
use regpipe::prelude::*;

fn main() {
    for (label, ddg) in [
        ("APSI-47-like (convergent)", apsi47_like()),
        ("APSI-50-like (floor-bound)", apsi50_like()),
    ] {
        println!("=== {label}: {} ops, {} invariants ===", ddg.num_ops(), ddg.num_invariants());
        println!(
            "{:<8} {:>6} {:>12} {:>6} {:>6} {:>8} {:>10}",
            "machine", "regs", "strategy", "II", "used", "spills", "mem ops/it"
        );
        for machine in MachineConfig::paper_configs() {
            for regs in [64, 32, 16] {
                for strategy in [Strategy::IncreaseIi, Strategy::Spill, Strategy::BestOfAll] {
                    let opts = CompileOptions { strategy, ..CompileOptions::default() };
                    match compile(&ddg, &machine, regs, &opts) {
                        Ok(c) => println!(
                            "{:<8} {:>6} {:>12} {:>6} {:>6} {:>8} {:>10}",
                            machine.name(),
                            regs,
                            format!("{strategy:?}"),
                            c.ii(),
                            c.registers_used(),
                            c.spilled(),
                            c.memory_ops()
                        ),
                        Err(e) => println!(
                            "{:<8} {:>6} {:>12}   failed: {e}",
                            machine.name(),
                            regs,
                            format!("{strategy:?}")
                        ),
                    }
                }
            }
        }
        println!();
    }
}
