//! A mini evaluation over a 100-loop synthetic suite: how much throughput a
//! 32-register file costs relative to an unbounded one, per archetype.
//!
//! Run with `cargo run --release --example suite_report`.

use std::collections::BTreeMap;

use regpipe::core::{SpillDriver, SpillDriverOptions};
use regpipe::loops::suite;
use regpipe::prelude::*;
use regpipe::sched::SchedRequest;

fn main() {
    let loops = suite(2026, 100);
    let machine = MachineConfig::p2l4();
    let driver = SpillDriver::new(SpillDriverOptions::default());
    let scheduler = HrmsScheduler::new();

    // (loops, ideal cycles, constrained cycles, spills) per archetype.
    let mut per_kind: BTreeMap<String, (u32, u64, u64, u64)> = BTreeMap::new();
    for l in &loops {
        let kind = l.name.split('_').next().unwrap_or("?").to_string();
        let ideal = scheduler
            .schedule(&l.ddg, &machine, &SchedRequest::default())
            .expect("suite loops are schedulable");
        let constrained = driver.run(&l.ddg, &machine, 32).expect("spilling always fits 32");
        let entry = per_kind.entry(kind).or_default();
        entry.0 += 1;
        entry.1 += l.cycles(ideal.ii());
        entry.2 += l.cycles(constrained.schedule.ii());
        entry.3 += u64::from(constrained.spilled);
    }

    println!("=== 100-loop suite on {machine} with 32 registers ===\n");
    println!(
        "{:<10} {:>6} {:>14} {:>14} {:>9} {:>8}",
        "archetype", "loops", "ideal cycles", "constrained", "slowdown", "spills"
    );
    let mut tot = (0u32, 0u64, 0u64, 0u64);
    for (kind, (n, ideal, constrained, spills)) in &per_kind {
        println!(
            "{:<10} {:>6} {:>14} {:>14} {:>8.2}x {:>8}",
            kind,
            n,
            ideal,
            constrained,
            *constrained as f64 / *ideal as f64,
            spills
        );
        tot.0 += n;
        tot.1 += ideal;
        tot.2 += constrained;
        tot.3 += spills;
    }
    println!(
        "{:<10} {:>6} {:>14} {:>14} {:>8.2}x {:>8}",
        "TOTAL",
        tot.0,
        tot.1,
        tot.2,
        tot.2 as f64 / tot.1 as f64,
        tot.3
    );
    println!("\nHeavy stencils pay for their register floors; streams are free.");
}
