//! The workload funnel end-to-end, programmatically: generate a seeded
//! synthetic corpus, write it to disk with a machine description, load it
//! back, and batch-compile it with worker-count-independent results —
//! the library-side equivalent of
//! `regpipe gen … && regpipe check … && regpipe suite --corpus …`.
//!
//! Run with `cargo run --release --example corpus_workflow`.

use std::num::NonZeroUsize;

use regpipe::core::Strategy;
use regpipe::loops::{load_corpus, GenParams, WeightDist};
use regpipe::machine::textfmt as machfmt;
use regpipe::prelude::*;

fn main() {
    let dir = std::env::temp_dir().join("regpipe-corpus-example");
    let _ = std::fs::remove_dir_all(&dir);

    // 1. Generate: 60 kernels, denser recurrences than the default, flat
    //    weights so every kernel counts equally. Same seed, same bytes.
    let params = GenParams {
        recurrence_density: 0.4,
        weights: WeightDist::Constant(1000),
        ..GenParams::default()
    };
    let loops = generate(2026, 60, &params).expect("valid knobs");
    write_corpus(&dir, &loops).expect("corpus written");

    // 2. Give the corpus a machine: P2L6 spelled as a .mach file.
    std::fs::write(dir.join("machine.mach"), machfmt::format(&MachineConfig::p2l6()))
        .expect("machine description written");

    // 3. Load it back; the loader returns loops in file-name order plus
    //    the machine, reporting any broken file as `file:line: message`.
    let corpus = load_corpus(&dir).expect("corpus loads");
    let machine = corpus.machine.expect("corpus carries a machine");
    println!("loaded {} loops for {}", corpus.loops.len(), machine);

    // 4. Batch-compile every loop × budget × strategy cell. The report is
    //    byte-identical for any worker count.
    let report = run_batch(
        &corpus.loops,
        &BatchRequest {
            machine,
            budgets: vec![64, 32, 16],
            strategies: vec![Strategy::BestOfAll],
            options: CompileOptions::default(),
            jobs: NonZeroUsize::new(4).unwrap(),
        },
    );
    for agg in report.aggregates() {
        println!(
            "budget {:>2}: {:>2} fitted, {:>2} failed, {:>6.2} Mcycles, {} lifetimes spilled",
            agg.budget,
            agg.fitted,
            agg.failures,
            agg.cycles as f64 / 1e6,
            agg.spilled
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}
