//! Quickstart: build a loop, compile it under a register budget, inspect
//! the result.
//!
//! Run with `cargo run --example quickstart`.

use regpipe::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The loop body of `y(i) = a*x(i) + y(i-4)` — a SAXPY with a carried
    // tap four iterations back.
    let mut b = DdgBuilder::new("saxpy4");
    let lx = b.add_op(OpKind::Load, "ld x[i]");
    let mul = b.add_op(OpKind::Mul, "a*x");
    let add = b.add_op(OpKind::Add, "+y[i-4]");
    let st = b.add_op(OpKind::Store, "st y[i]");
    b.reg(lx, mul);
    b.reg(mul, add);
    b.reg_dist(lx, add, 4); // value of x from 4 iterations ago
    b.reg(add, st);
    b.invariant("a", &[mul]);
    let ddg = b.build()?;

    // The machine: 2 units of each class, adder/multiplier latency 4
    // (the paper's P2L4 configuration).
    let machine = MachineConfig::p2l4();

    // Unconstrained: schedule at the minimum initiation interval.
    let sched = HrmsScheduler::new().schedule(&ddg, &machine, &Default::default())?;
    let regs = allocate(&ddg, &sched);
    println!(
        "unconstrained: II = {} (MII = {}), {} registers",
        sched.ii(),
        mii(&ddg, &machine),
        regs.total()
    );

    // Constrained: fit the loop into 6 registers. `compile` applies the
    // paper's best-of-all strategy (spill, then probe larger IIs).
    let compiled = compile(&ddg, &machine, 6, &CompileOptions::default())?;
    println!(
        "constrained to 6 regs: II = {}, {} registers, {} lifetimes spilled ({:?})",
        compiled.ii(),
        compiled.registers_used(),
        compiled.spilled(),
        compiled.strategy_used(),
    );

    // The kernel the hardware would iterate on, stage-annotated.
    println!("\n{}", compiled.kernel());
    Ok(())
}
