//! The scheduler axis in one table: compile a generated corpus under
//! every scheduler in the registry (HRMS, SMS, ASAP) and print a per-loop
//! II / MaxLive / registers comparison plus the aggregate bill — the
//! library-side equivalent of running `regpipe suite --scheduler <s>`
//! once per scheduler and diffing the three `BENCH_suite.json` files.
//!
//! The hand-walked explanation of *why* the columns differ is in
//! `docs/algorithms.md`. Run with
//! `cargo run --release --example scheduler_compare`.

use regpipe::machine::MachineConfig;
use regpipe::prelude::*;
use regpipe::sched::SchedRequest;

fn main() {
    // A small corpus biased towards acyclic joins (low recurrence
    // density) — the structure on which the HRMS and SMS orderings
    // actually diverge, per docs/algorithms.md.
    let params = GenParams { recurrence_density: 0.15, ..GenParams::default() };
    let loops = generate(2048, 12, &params).expect("valid knobs");
    let machine = MachineConfig::p2l4();
    let schedulers = SchedulerKind::ALL;

    println!("machine {}, {} generated loops (seed 2048)", machine.name(), loops.len());
    print!("{:<12}", "loop");
    for kind in schedulers {
        print!("  {:>16}", format!("{kind}: II/SC/regs"));
    }
    println!();

    // Unconstrained comparison: each scheduler at its best II, measured
    // by the register allocator (total = rotating + invariants).
    let mut totals = [(0u64, 0u64); SchedulerKind::ALL.len()];
    for l in &loops {
        print!("{:<12}", l.name);
        for (col, kind) in schedulers.into_iter().enumerate() {
            let sched = kind
                .schedule(&l.ddg, &machine, &SchedRequest::default())
                .expect("unconstrained scheduling always succeeds");
            sched.verify(&l.ddg, &machine).expect("valid modulo schedule");
            let alloc = allocate(&l.ddg, &sched);
            totals[col].0 += u64::from(sched.ii()) * l.weight;
            totals[col].1 += u64::from(alloc.total());
            let cell = format!("{}/{}/{}", sched.ii(), sched.stage_count(), alloc.total());
            print!("  {cell:>16}");
        }
        println!();
    }
    print!("{:<12}", "Σ regs");
    for (_, regs) in totals {
        print!("  {regs:>16}");
    }
    println!();
    print!("{:<12}", "Σ II·weight");
    for (cycles, _) in totals {
        print!("  {cycles:>16}");
    }
    println!();

    // Constrained comparison: the full compile path (best-of-all driver)
    // under a 24-register budget, per scheduler.
    println!("\nbest-of-all under a 24-register budget:");
    for kind in schedulers {
        let (mut fitted, mut spilled, mut cycles) = (0u32, 0u64, 0u64);
        for l in &loops {
            let options = CompileOptions { scheduler: kind, ..CompileOptions::default() };
            if let Ok(c) = compile(&l.ddg, &machine, 24, &options) {
                fitted += 1;
                spilled += u64::from(c.spilled());
                cycles += u64::from(c.ii()) * l.weight;
            }
        }
        println!(
            "  {:<5} fitted {fitted:>2}/{}  spilled {spilled:>3}  Σ II·weight {cycles}",
            kind.slug(),
            loops.len()
        );
    }
}
