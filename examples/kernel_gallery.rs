//! A gallery of classic numeric kernels through the whole pipeline: MII
//! decomposition, scheduling, pressure charts, stage-scheduling recovery,
//! and the rotating-file vs MVE register bill.
//!
//! Run with `cargo run --release --example kernel_gallery`.

use regpipe::loops::kernels;
use regpipe::prelude::*;
use regpipe::regalloc::{pressure_chart, LifetimeAnalysis, MveAllocator};
use regpipe::sched::{rec_mii, stage_schedule, AsapScheduler, SchedRequest, Scheduler};

fn main() {
    let machine = MachineConfig::p2l4();
    println!("machine: {machine}\n");
    println!(
        "{:<14} {:>4} {:>6} {:>4} {:>5} {:>7} {:>7} {:>9} {:>7}",
        "kernel", "ops", "RecMII", "MII", "II", "regs", "asap", "asap+stage", "MVE"
    );
    for g in kernels::all_kernels() {
        let hrms = HrmsScheduler::new()
            .schedule(&g, &machine, &SchedRequest::default())
            .expect("kernels schedule");
        let asap = AsapScheduler::new()
            .schedule(&g, &machine, &SchedRequest::default())
            .expect("kernels schedule");
        let asap_staged = stage_schedule(&g, &machine, &asap);
        let hrms_alloc = allocate(&g, &hrms);
        let asap_alloc = allocate(&g, &asap);
        let staged_alloc = allocate(&g, &asap_staged);
        let mve = MveAllocator::new().allocate(&LifetimeAnalysis::new(&g, &hrms));
        println!(
            "{:<14} {:>4} {:>6} {:>4} {:>5} {:>7} {:>7} {:>9} {:>4}x{:<3}",
            g.name(),
            g.num_ops(),
            rec_mii(&g, &machine),
            mii(&g, &machine),
            hrms.ii(),
            hrms_alloc.total(),
            asap_alloc.total(),
            staged_alloc.total(),
            mve.total(),
            mve.unroll(),
        );
    }

    // Deep dive: the tri-diagonal recurrence, which no machine can speed up.
    let g = kernels::tridiagonal();
    let s = HrmsScheduler::new().schedule(&g, &machine, &SchedRequest::default()).unwrap();
    println!("\n--- tridiagonal elimination in detail ---");
    println!("{}", pressure_chart(&LifetimeAnalysis::new(&g, &s)));
    let c = compile(&g, &machine, 4, &CompileOptions::default()).expect("fits 4 registers");
    println!(
        "under a 4-register budget: II {} -> {}, {} spills, strategy {:?}",
        s.ii(),
        c.ii(),
        c.spilled(),
        c.strategy_used()
    );
}
